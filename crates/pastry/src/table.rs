//! The Pastry routing table.
//!
//! "A node's routing table is organized into ⌈log_2^b N⌉ levels with 2^b − 1
//! entries each. The 2^b − 1 entries at level n ... each refer to a node
//! whose nodeId matches the present node's nodeId in the first n digits, but
//! whose n+1-th digit has one of the 2^b − 1 possible values other than the
//! n+1-th digit in the present node's id. ... Among such nodes, the one
//! closest to the present node, according to the proximity metric, is chosen
//! in practice."

use crate::handle::NodeHandle;
use crate::id::{Config, Id};
use past_netsim::Addr;

/// One routing-table slot: the chosen node and its measured proximity.
#[derive(Clone, Copy, Debug)]
struct Slot {
    handle: NodeHandle,
    proximity_us: u64,
}

/// The prefix-indexed routing table of one node.
///
/// Rows are allocated lazily: "the uniform distribution of nodeIds ensures
/// an even population of the nodeId space; thus, only ⌈log_2^b N⌉ levels
/// are populated in the routing table", so a node in a 100 000-node network
/// touches only ~5 of its 32 potential rows.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    own: Id,
    b: u8,
    max_rows: usize,
    cols: usize,
    rows: Vec<Vec<Option<Slot>>>,
}

impl RoutingTable {
    /// Creates an empty table for a node with id `own`.
    pub fn new(own: Id, cfg: &Config) -> RoutingTable {
        RoutingTable {
            own,
            b: cfg.b,
            max_rows: cfg.digits(),
            cols: cfg.cols(),
            rows: Vec::new(),
        }
    }

    /// Ensures row `row` is allocated.
    fn grow_to(&mut self, row: usize) {
        debug_assert!(row < self.max_rows);
        while self.rows.len() <= row {
            self.rows.push(vec![None; self.cols]);
        }
    }

    /// The entry at (row, col), if populated.
    pub fn get(&self, row: usize, col: usize) -> Option<NodeHandle> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .and_then(|s| s.map(|s| s.handle))
    }

    /// The slot a given id would occupy: `(row, col)`, or `None` for our own
    /// id (all digits shared).
    pub fn slot_for(&self, id: &Id) -> Option<(usize, usize)> {
        let row = self.own.prefix_len(id, self.b);
        if row == self.max_rows {
            return None;
        }
        Some((row, id.digit(row, self.b) as usize))
    }

    /// Offers a candidate for inclusion; it is installed if its slot is
    /// empty or if it is strictly closer (by proximity) than the incumbent.
    ///
    /// Returns true if the table changed.
    pub fn consider(&mut self, handle: NodeHandle, proximity_us: u64) -> bool {
        let Some((row, col)) = self.slot_for(&handle.id) else {
            return false;
        };
        self.grow_to(row);
        let slot = &mut self.rows[row][col];
        match slot {
            Some(existing) if existing.handle.addr == handle.addr => false,
            Some(existing) if existing.proximity_us <= proximity_us => false,
            _ => {
                *slot = Some(Slot {
                    handle,
                    proximity_us,
                });
                true
            }
        }
    }

    /// Removes any entry referring to `addr`; returns the slots vacated.
    pub fn remove_addr(&mut self, addr: Addr) -> Vec<(usize, usize)> {
        let mut vacated = Vec::new();
        for (r, row) in self.rows.iter_mut().enumerate() {
            for (c, slot) in row.iter_mut().enumerate() {
                if slot.map(|s| s.handle.addr) == Some(addr) {
                    *slot = None;
                    vacated.push((r, c));
                }
            }
        }
        vacated
    }

    /// All populated slots as `(row, col, entry)` (snapshot/invariant
    /// support).
    pub fn slots(&self) -> impl Iterator<Item = (usize, usize, NodeHandle)> + '_ {
        self.rows.iter().enumerate().flat_map(|(r, row)| {
            row.iter()
                .enumerate()
                .filter_map(move |(c, s)| s.map(|s| (r, c, s.handle)))
        })
    }

    /// All populated entries.
    pub fn entries(&self) -> impl Iterator<Item = NodeHandle> + '_ {
        self.rows
            .iter()
            .flatten()
            .filter_map(|s| s.map(|s| s.handle))
    }

    /// The populated entries of one row (used by the join protocol: "the
    /// i-th row of the routing table from the i-th node encountered along
    /// the route").
    pub fn row_entries(&self, row: usize) -> Vec<NodeHandle> {
        self.rows
            .get(row)
            .map(|r| r.iter().filter_map(|s| s.map(|s| s.handle)).collect())
            .unwrap_or_default()
    }

    /// Number of populated entries (for the E2 state-size experiment).
    pub fn populated(&self) -> usize {
        self.rows.iter().flatten().filter(|s| s.is_some()).count()
    }

    /// Number of rows with at least one entry.
    pub fn populated_rows(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.iter().any(|s| s.is_some()))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::default()
    }

    fn h(id: u128, addr: Addr) -> NodeHandle {
        NodeHandle::new(Id(id), addr)
    }

    const OWN: u128 = 0xabcd_0000_0000_0000_0000_0000_0000_0000;

    #[test]
    fn slot_assignment_follows_prefix() {
        let t = RoutingTable::new(Id(OWN), &cfg());
        // Differs in first digit (0x1 vs 0xa) -> row 0, col 1.
        let other = Id(0x1bcd_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(t.slot_for(&other), Some((0, 1)));
        // Shares 3 digits, 4th digit is 0xe -> row 3, col 0xe.
        let other = Id(0xabce_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(t.slot_for(&other), Some((3, 0xe)));
        // Own id has no slot.
        assert_eq!(t.slot_for(&Id(OWN)), None);
    }

    #[test]
    fn consider_prefers_closer_nodes() {
        let mut t = RoutingTable::new(Id(OWN), &cfg());
        let far = h(0x1bcd_0000_0000_0000_0000_0000_0000_0000, 1);
        let near = h(0x1fff_0000_0000_0000_0000_0000_0000_0000, 2);
        assert!(t.consider(far, 900));
        assert_eq!(t.get(0, 1).unwrap().addr, 1);
        // A closer candidate for the same slot replaces the incumbent.
        assert!(t.consider(near, 100));
        assert_eq!(t.get(0, 1).unwrap().addr, 2);
        // A farther candidate does not.
        assert!(!t.consider(far, 900));
        assert_eq!(t.get(0, 1).unwrap().addr, 2);
    }

    #[test]
    fn consider_ignores_own_id() {
        let mut t = RoutingTable::new(Id(OWN), &cfg());
        assert!(!t.consider(h(OWN, 9), 1));
        assert_eq!(t.populated(), 0);
    }

    #[test]
    fn remove_addr_vacates_slots() {
        let mut t = RoutingTable::new(Id(OWN), &cfg());
        t.consider(h(0x1bcd_0000_0000_0000_0000_0000_0000_0000, 1), 10);
        t.consider(h(0xabce_0000_0000_0000_0000_0000_0000_0000, 1), 10);
        let vacated = t.remove_addr(1);
        assert_eq!(vacated.len(), 2);
        assert_eq!(t.populated(), 0);
    }

    #[test]
    fn row_entries_and_counts() {
        let mut t = RoutingTable::new(Id(OWN), &cfg());
        t.consider(h(0x1bcd_0000_0000_0000_0000_0000_0000_0000, 1), 10);
        t.consider(h(0x2bcd_0000_0000_0000_0000_0000_0000_0000, 2), 10);
        t.consider(h(0xabce_0000_0000_0000_0000_0000_0000_0000, 3), 10);
        assert_eq!(t.row_entries(0).len(), 2);
        assert_eq!(t.row_entries(3).len(), 1);
        assert_eq!(t.populated(), 3);
        assert_eq!(t.populated_rows(), 2);
        assert_eq!(t.entries().count(), 3);
    }
}
