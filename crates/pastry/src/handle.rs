//! Node handles: the (nodeId, network address) pairs stored in routing
//! state.
//!
//! In the paper "each entry maps a nodeId to the associated node's IP
//! address"; in the simulator the address is a topology slot index.

use crate::id::Id;
use past_netsim::Addr;
use std::fmt;

/// A reference to a remote node: its id and simulator address.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeHandle {
    /// The node's 128-bit identifier.
    pub id: Id,
    /// The node's network address.
    pub addr: Addr,
}

impl NodeHandle {
    /// Creates a handle.
    pub fn new(id: Id, addr: Addr) -> NodeHandle {
        NodeHandle { id, addr }
    }
}

impl fmt::Debug for NodeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.id, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_format() {
        let h = NodeHandle::new(Id(0xff), 3);
        assert_eq!(format!("{h:?}"), format!("{}@3", Id(0xff)));
    }
}
