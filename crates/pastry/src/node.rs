//! Per-node Pastry protocol logic.
//!
//! Implements message handling for routing, the join protocol, leaf-set
//! and routing-table repair, heartbeats, and failure notifications, and
//! dispatches application callbacks.
//!
//! The logic is **sans-io**: [`PastryNode::step`] is a pure transition
//! function `(state, Input) → effects` whose only coupling to the
//! outside world is the [`Io`] effect sink it writes through. The
//! simulator adapts it onto the engine in [`crate::sim`] (the
//! L1-sanctioned adapter); an engine-free driver (`past_wire::StepIo`)
//! runs the same machine in pure tests and, later, socket transports.

use crate::app::{App, AppCtx, PastryOut, RouteInfo};
use crate::handle::NodeHandle;
use crate::id::Config;
use crate::msg::{PastryMsg, PayloadSize, RouteEnvelope};
use crate::route::{next_hop, NextHop};
use crate::state::PastryState;
use past_wire::{Addr, Input, Io};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Timer id for leaf-set heartbeats.
pub const TIMER_HEARTBEAT: u64 = 1;
/// Timer id for the heartbeat-ack deadline (loss recovery only).
pub const TIMER_HEARTBEAT_CHECK: u64 = 2;
/// Timer id driving join initiation and bounded join retries (loss
/// recovery only).
pub const TIMER_JOIN_RETRY: u64 = 3;
/// Application timers are offset by this base.
pub const APP_TIMER_BASE: u64 = 1 << 32;

/// Loss-recovery parameters for the maintenance protocol.
///
/// `None` (the default on every node) preserves the crash-only behavior:
/// failure detection relies purely on send-failure notifications, joins
/// are single-shot, and no extra timers or messages exist — runs without
/// faults stay bit-identical. With a config installed, heartbeat rounds
/// track acknowledgments (suspecting silent peers after
/// [`missed_ack_limit`] quiet rounds), piggyback anti-entropy traffic
/// that re-teaches state lost to dropped messages, and joins retry with
/// a deadline.
///
/// [`missed_ack_limit`]: RecoveryConfig::missed_ack_limit
#[derive(Clone, Copy, Debug)]
pub struct RecoveryConfig {
    /// How long after a heartbeat round the ack check fires. Must exceed
    /// a round trip to the farthest leaf-set member.
    pub heartbeat_timeout_us: u64,
    /// Consecutive unacknowledged rounds before a peer is suspected dead.
    pub missed_ack_limit: u32,
    /// Deadline for one join attempt before the next retry.
    pub join_timeout_us: u64,
    /// Join attempts before giving up with [`PastryOut::JoinFailed`].
    pub join_attempts: u32,
}

impl Default for RecoveryConfig {
    fn default() -> RecoveryConfig {
        RecoveryConfig {
            // The default sphere topology's one-way delay tops out at
            // 120 ms; 500 ms clears a round trip with ample jitter room.
            heartbeat_timeout_us: 500_000,
            missed_ack_limit: 3,
            join_timeout_us: 2_000_000,
            join_attempts: 5,
        }
    }
}

/// An in-flight (possibly retried) join.
struct PendingJoin {
    contact: Addr,
    attempts: u32,
}

/// Failure-injection behavior of a node.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Behavior {
    /// Follows the protocol.
    #[default]
    Normal,
    /// Malicious: accepts routed messages but silently drops them
    /// (the attack the paper's randomized routing defends against).
    DropRoutes,
}

/// The effect sink a Pastry node writes through: any [`Io`] over the
/// Pastry message set and overlay observations.
pub type PastryIo<'i, A> = dyn Io<PastryMsg<<A as App>::Payload>, PastryOut<<A as App>::Out>> + 'i;

/// A Pastry node: routing state, application, and protocol behavior.
pub struct PastryNode<A: App> {
    /// The routing state (table, leaf set, neighborhood set).
    pub state: PastryState,
    /// The application running on this node.
    pub app: A,
    /// Failure-injection behavior.
    pub behavior: Behavior,
    /// True once the join protocol has completed (or for bootstrap nodes).
    pub joined: bool,
    /// If set, heartbeats re-arm with this period.
    pub heartbeat_interval_us: Option<u64>,
    /// Hops taken by this node's join request, once joined.
    pub join_hops: Option<u32>,
    /// Loss-recovery parameters; `None` keeps crash-only behavior.
    pub recovery: Option<RecoveryConfig>,
    /// Peers this node has observed failing. State offered by other nodes
    /// (leaf-set merges, repair replies) is ignored for suspected peers,
    /// or the gossip would keep re-installing dead entries and the repair
    /// traffic would never converge. Hearing *from* a peer clears the
    /// suspicion (it is evidently alive again).
    suspected: HashSet<Addr>,
    /// Leaf-set peers probed in the current heartbeat round that have not
    /// answered yet (recovery mode only).
    awaiting_ack: BTreeSet<Addr>,
    /// Consecutive heartbeat rounds each peer has stayed silent.
    missed_acks: BTreeMap<Addr, u32>,
    /// The join this node is still trying to complete.
    pending_join: Option<PendingJoin>,
}

impl<A: App> PastryNode<A> {
    /// Creates a node with the given id/address and application.
    pub fn new(cfg: Config, me: NodeHandle, app: A) -> PastryNode<A> {
        PastryNode {
            state: PastryState::new(cfg, me),
            app,
            behavior: Behavior::Normal,
            joined: false,
            heartbeat_interval_us: None,
            join_hops: None,
            recovery: None,
            suspected: HashSet::new(),
            awaiting_ack: BTreeSet::new(),
            missed_acks: BTreeMap::new(),
            pending_join: None,
        }
    }

    /// True if this node currently suspects `addr` of being dead.
    pub fn suspects(&self, addr: Addr) -> bool {
        self.suspected.contains(&addr)
    }

    /// Registers a join through `contact`; the harness arms
    /// [`TIMER_JOIN_RETRY`] at delay 0 to start the first attempt
    /// (recovery mode only — crash-only joins inject directly).
    pub fn begin_join(&mut self, contact: Addr) {
        self.pending_join = Some(PendingJoin {
            contact,
            attempts: 0,
        });
    }

    /// Applies one protocol input to this node, writing every resulting
    /// effect (sends, timers, observations) through `io` in call order.
    ///
    /// This is the node's entire interface to the outside world — the
    /// sans-io transition function. The engine adapter
    /// (`impl NodeLogic` in [`crate::sim`]) and pure test drivers both
    /// funnel through here.
    pub fn step(&mut self, input: Input<PastryMsg<A::Payload>>, io: &mut PastryIo<'_, A>) {
        match input {
            Input::Message { from, msg } => self.on_message(from, msg, io),
            Input::SendFailed { to, msg } => self.on_send_failed(to, msg, io),
            Input::Timer { kind } => self.on_timer(kind, io),
        }
    }

    /// Routes or delivers an envelope currently held by this node.
    fn route_env(&mut self, mut env: RouteEnvelope<A::Payload>, io: &mut PastryIo<'_, A>) {
        if env.hops > self.state.cfg.max_route_hops {
            // A cycle through inconsistent (failure-damaged) state; drop
            // and let the client retry after repair.
            let (now, me) = (io.now_us(), io.me());
            io.tracer()
                .route_drop(now, env.payload.op_id(), me, env.key.0);
            io.emit(PastryOut::RouteDropped {
                key: env.key,
                origin: env.origin,
            });
            return;
        }
        match next_hop(&self.state, &env.key, io.rng()) {
            NextHop::DeliverHere => {
                let (now, me) = (io.now_us(), io.me());
                io.tracer().route_deliver(
                    now,
                    env.payload.op_id(),
                    me,
                    env.key.0,
                    env.hops,
                    env.path_us,
                );
                io.emit(PastryOut::Delivered {
                    key: env.key,
                    origin: env.origin,
                    hops: env.hops,
                    path_us: env.path_us,
                });
                let info = RouteInfo {
                    origin: env.origin,
                    hops: env.hops,
                    path_us: env.path_us,
                };
                let mut cx = AppCtx { io: &mut *io };
                self.app
                    .deliver(&self.state, env.key, env.payload, info, &mut cx);
            }
            NextHop::Forward(next) => {
                let mut cx = AppCtx { io: &mut *io };
                if !self.app.forward(&self.state, &mut env, next, &mut cx) {
                    return;
                }
                if io.tracer().config().routes {
                    // Prefix-match depth: how many digits of the key this
                    // hop already resolves (computed only when recording).
                    let depth = self.state.me.id.prefix_len(&env.key, self.state.cfg.b) as u32;
                    let (now, me) = (io.now_us(), io.me());
                    io.tracer()
                        .route_hop(now, env.payload.op_id(), me, env.key.0, env.hops, depth);
                }
                env.hops += 1;
                env.path_us += io.delay_to(next.addr);
                io.send(next.addr, PastryMsg::Route(env));
            }
        }
    }

    /// Adds a node, invoking the leaf-set-change hook if needed.
    fn learn(&mut self, h: NodeHandle, io: &mut PastryIo<'_, A>) {
        if self.suspected.contains(&h.addr) {
            return;
        }
        let prox = io.delay_to(h.addr);
        if self.state.add_node(h, prox) {
            let mut cx = AppCtx { io: &mut *io };
            self.app.on_leafset_changed(&self.state, &[h], &[], &mut cx);
        }
    }

    /// Adds a batch of nodes, invoking the hook once with all leaf changes.
    fn learn_batch(&mut self, handles: &[NodeHandle], io: &mut PastryIo<'_, A>) {
        let mut added = Vec::new();
        for &h in handles {
            if self.suspected.contains(&h.addr) {
                continue;
            }
            let prox = io.delay_to(h.addr);
            if self.state.add_node(h, prox) {
                added.push(h);
            }
        }
        if !added.is_empty() {
            let mut cx = AppCtx { io: &mut *io };
            self.app
                .on_leafset_changed(&self.state, &added, &[], &mut cx);
        }
    }

    /// Removes a failed peer from the state and initiates repair.
    ///
    /// "All members of the failed node's leaf set are then notified and
    /// they update their leaf sets" — here, the detecting node asks the
    /// farthest live member on the failed side for its leaf set. Routing
    /// table slots are repaired by asking a same-row peer for its entry.
    fn handle_peer_failure(&mut self, dead: Addr, io: &mut PastryIo<'_, A>) {
        self.suspected.insert(dead);
        let removal = self.state.remove_addr(dead);
        if let Some(side) = removal.leaf_side {
            if let Some(ex) = self.state.leaf.extreme(side) {
                io.send(ex.addr, PastryMsg::LeafRequest);
            }
            if let Some(h) = removal.leaf_handle {
                let mut cx = AppCtx { io: &mut *io };
                self.app.on_leafset_changed(&self.state, &[], &[h], &mut cx);
            }
        }
        for (row, col) in removal.table_slots {
            // Ask any live same-row peer for a replacement entry.
            if let Some(peer) = self.state.table.row_entries(row).first() {
                io.send(peer.addr, PastryMsg::RepairRequest { row, col });
            }
        }
    }

    fn on_message(&mut self, from: Addr, msg: PastryMsg<A::Payload>, io: &mut PastryIo<'_, A>) {
        // Hearing from a peer proves it alive: drop any suspicion, settle
        // the current heartbeat round, and reset its missed-ack count.
        self.suspected.remove(&from);
        self.awaiting_ack.remove(&from);
        self.missed_acks.remove(&from);
        match msg {
            PastryMsg::Route(env) => {
                if self.behavior == Behavior::DropRoutes && env.origin != io.me() {
                    return;
                }
                self.route_env(env, io);
            }
            PastryMsg::JoinRequest {
                joiner,
                mut rows,
                mut rows_done,
                hops,
            } => {
                // Contribute our routing-table rows usable by the joiner:
                // rows up to the shared-prefix length.
                let p = self.state.me.id.prefix_len(&joiner.id, self.state.cfg.b);
                let max_row = p.min(self.state.cfg.digits() - 1);
                while rows_done <= max_row {
                    rows.extend(self.state.table.row_entries(rows_done));
                    rows_done += 1;
                }
                rows.push(self.state.me);
                // Decide before learning the joiner, so we never forward
                // the join to the joiner itself. Past the hop TTL (cycle
                // through damaged state), answer as Z instead of looping.
                let decision = if hops > self.state.cfg.max_route_hops {
                    NextHop::DeliverHere
                } else {
                    next_hop(&self.state, &joiner.id, io.rng())
                };
                match decision {
                    NextHop::DeliverHere => {
                        let leaf: Vec<NodeHandle> = self.state.leaf.members().copied().collect();
                        io.send(
                            joiner.addr,
                            PastryMsg::JoinReply {
                                z: self.state.me,
                                rows,
                                leaf,
                                hops,
                            },
                        );
                    }
                    NextHop::Forward(next) => {
                        io.send(
                            next.addr,
                            PastryMsg::JoinRequest {
                                joiner,
                                rows,
                                rows_done,
                                hops: hops + 1,
                            },
                        );
                    }
                }
                self.learn(joiner, io);
            }
            PastryMsg::JoinReply {
                z,
                rows,
                leaf,
                hops,
            } => {
                let mut all = rows;
                all.extend(leaf);
                all.push(z);
                self.learn_batch(&all, io);
                if self.joined {
                    // A duplicate or late reply from a retried (or
                    // duplicated) join: the state merge above is all it
                    // is still good for.
                    return;
                }
                self.joined = true;
                self.join_hops = Some(hops);
                self.pending_join = None;
                let (now, me) = (io.now_us(), io.me());
                io.tracer().join_phase(now, me, "complete");
                // "Notify interested nodes that need to know of its
                // arrival, thereby restoring all of Pastry's invariants."
                let me = self.state.me;
                for h in self.state.known_nodes() {
                    io.send(h.addr, PastryMsg::Announce { from: me });
                }
                io.emit(PastryOut::JoinComplete { hops });
            }
            PastryMsg::NeighborhoodRequest => {
                let mut members: Vec<NodeHandle> =
                    self.state.neighborhood.members().copied().collect();
                members.push(self.state.me);
                io.send(from, PastryMsg::NeighborhoodReply { members });
            }
            PastryMsg::NeighborhoodReply { members } => {
                self.learn_batch(&members, io);
            }
            PastryMsg::Announce { from: h } => {
                self.learn(h, io);
            }
            PastryMsg::LeafRequest => {
                let mut members: Vec<NodeHandle> = self.state.leaf.members().copied().collect();
                members.push(self.state.me);
                io.send(from, PastryMsg::LeafReply { members });
            }
            PastryMsg::LeafReply { members } => {
                self.learn_batch(&members, io);
            }
            PastryMsg::RowRequest { row } => {
                let entries = self.state.table.row_entries(row);
                io.send(from, PastryMsg::RowReply { entries });
            }
            PastryMsg::RowReply { entries } => {
                self.learn_batch(&entries, io);
            }
            PastryMsg::RepairRequest { row, col } => {
                let entry = self.state.table.get(row, col);
                io.send(from, PastryMsg::RepairReply { entry });
            }
            PastryMsg::RepairReply { entry } => {
                if let Some(h) = entry {
                    self.learn(h, io);
                }
            }
            PastryMsg::Heartbeat => {
                io.send(from, PastryMsg::HeartbeatAck);
            }
            // The proof-of-life prelude above already settled the round
            // and cleared the sender's missed-ack count.
            PastryMsg::HeartbeatAck => {}
            PastryMsg::AppDirect { payload } => {
                let mut cx = AppCtx { io: &mut *io };
                self.app.on_direct(&self.state, from, payload, &mut cx);
            }
        }
    }

    fn on_send_failed(&mut self, to: Addr, msg: PastryMsg<A::Payload>, io: &mut PastryIo<'_, A>) {
        // The peer is presumed failed: purge it and repair, then retry
        // whatever the message was trying to do.
        self.handle_peer_failure(to, io);
        match msg {
            PastryMsg::Route(env) => {
                // "Automatically resolves node failures": re-route around
                // the dead node (it is no longer in our state).
                self.route_env(env, io);
            }
            PastryMsg::JoinRequest {
                joiner,
                rows,
                rows_done,
                hops,
            } => {
                // Re-route the join with our updated state.
                match next_hop(&self.state, &joiner.id, io.rng()) {
                    NextHop::DeliverHere => {
                        let leaf: Vec<NodeHandle> = self.state.leaf.members().copied().collect();
                        io.send(
                            joiner.addr,
                            PastryMsg::JoinReply {
                                z: self.state.me,
                                rows,
                                leaf,
                                hops,
                            },
                        );
                    }
                    NextHop::Forward(next) => {
                        io.send(
                            next.addr,
                            PastryMsg::JoinRequest {
                                joiner,
                                rows,
                                rows_done,
                                hops: hops + 1,
                            },
                        );
                    }
                }
            }
            PastryMsg::AppDirect { payload } => {
                let mut cx = AppCtx { io: &mut *io };
                self.app.on_direct_failed(&self.state, to, payload, &mut cx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, kind: u64, io: &mut PastryIo<'_, A>) {
        if kind >= APP_TIMER_BASE {
            let mut cx = AppCtx { io: &mut *io };
            self.app
                .on_timer(&self.state, kind - APP_TIMER_BASE, &mut cx);
            return;
        }
        match kind {
            TIMER_HEARTBEAT => {
                let members: Vec<Addr> = self.state.leaf.members().map(|m| m.addr).collect();
                if let Some(rc) = self.recovery {
                    // Loss-aware round: remember who owes an ack, and
                    // piggyback anti-entropy — re-announcing ourselves and
                    // pulling each member's leaf set re-teaches state that
                    // lossy links may have swallowed (dropped Announces
                    // leave asymmetric leaf sets that nothing else heals).
                    self.awaiting_ack.clear();
                    let me = self.state.me;
                    for &addr in &members {
                        io.send(addr, PastryMsg::Heartbeat);
                        io.send(addr, PastryMsg::Announce { from: me });
                        io.send(addr, PastryMsg::LeafRequest);
                        self.awaiting_ack.insert(addr);
                    }
                    if !members.is_empty() {
                        io.set_timer(rc.heartbeat_timeout_us, TIMER_HEARTBEAT_CHECK);
                    }
                } else {
                    for addr in members {
                        io.send(addr, PastryMsg::Heartbeat);
                    }
                }
                if let Some(period) = self.heartbeat_interval_us {
                    io.set_timer(period, TIMER_HEARTBEAT);
                }
            }
            TIMER_HEARTBEAT_CHECK => {
                let Some(rc) = self.recovery else { return };
                // Anyone still owing an ack stayed silent the whole round.
                let overdue: Vec<Addr> =
                    std::mem::take(&mut self.awaiting_ack).into_iter().collect();
                for addr in overdue {
                    let missed = self.missed_acks.entry(addr).or_insert(0);
                    *missed += 1;
                    if *missed >= rc.missed_ack_limit {
                        let rounds = *missed;
                        self.missed_acks.remove(&addr);
                        let (now, me) = (io.now_us(), io.me());
                        io.tracer().suspect(now, me, addr, rounds);
                        self.handle_peer_failure(addr, io);
                    }
                }
            }
            TIMER_JOIN_RETRY => {
                if self.joined {
                    self.pending_join = None;
                    return;
                }
                let Some(rc) = self.recovery else { return };
                let Some(pj) = &mut self.pending_join else {
                    return;
                };
                if pj.attempts >= rc.join_attempts {
                    let attempts = pj.attempts;
                    self.pending_join = None;
                    let (now, me) = (io.now_us(), io.me());
                    io.tracer().join_phase(now, me, "failed");
                    io.emit(PastryOut::JoinFailed { attempts });
                    return;
                }
                pj.attempts += 1;
                let phase = if pj.attempts == 1 { "start" } else { "retry" };
                let (now, me) = (io.now_us(), io.me());
                io.tracer().join_phase(now, me, phase);
                let contact = pj.contact;
                let joiner = self.state.me;
                io.send(contact, PastryMsg::NeighborhoodRequest);
                io.send(
                    contact,
                    PastryMsg::JoinRequest {
                        joiner,
                        rows: Vec::new(),
                        rows_done: 0,
                        hops: 0,
                    },
                );
                io.set_timer(rc.join_timeout_us, TIMER_JOIN_RETRY);
            }
            _ => {}
        }
    }
}
