//! Byte-level codec for the Pastry message set (DESIGN.md §13.2).
//!
//! Frame layout: `[version:1][kind:1]` followed by the variant's fields
//! in declaration order — little-endian integers, 24-byte node handles
//! (16-byte id + 8-byte address), `u32` length-prefixed handle vectors.
//! Row/column coordinates travel as `u16` (the id space has at most 128
//! digit rows and `2^b ≤ 256` columns). The application payload `P` is
//! encoded inline by its own [`Wire`] impl; its length is implied by its
//! content, not prefixed.

use crate::handle::NodeHandle;
use crate::id::Id;
use crate::msg::{PastryMsg, RouteEnvelope};
use past_wire::{
    get_u128, get_u16, get_u32, get_u64, get_u8, get_vec, put_u128, put_u16, put_u32, put_u64,
    put_u8, put_vec, tail, DecodeError, Wire, WIRE_VERSION,
};

impl Wire for Id {
    const MIN_WIRE_LEN: usize = 16;

    fn encode(&self, out: &mut Vec<u8>) {
        put_u128(out, self.0);
    }

    fn decode(buf: &[u8]) -> Result<(Id, usize), DecodeError> {
        let mut pos = 0;
        Ok((Id(get_u128(buf, &mut pos)?), pos))
    }

    fn encoded_len(&self) -> u64 {
        16
    }
}

impl Wire for NodeHandle {
    const MIN_WIRE_LEN: usize = 24;

    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        put_u64(out, self.addr as u64);
    }

    fn decode(buf: &[u8]) -> Result<(NodeHandle, usize), DecodeError> {
        let mut pos = 0;
        let (id, used) = Id::decode(buf)?;
        pos += used;
        let addr = get_u64(buf, &mut pos)? as usize;
        Ok((NodeHandle { id, addr }, pos))
    }

    fn encoded_len(&self) -> u64 {
        24
    }
}

impl<P: Wire> Wire for RouteEnvelope<P> {
    const MIN_WIRE_LEN: usize = 36 + P::MIN_WIRE_LEN;

    fn encode(&self, out: &mut Vec<u8>) {
        self.key.encode(out);
        put_u64(out, self.origin as u64);
        put_u32(out, self.hops);
        put_u64(out, self.path_us);
        self.payload.encode(out);
    }

    fn decode(buf: &[u8]) -> Result<(RouteEnvelope<P>, usize), DecodeError> {
        let mut pos = 0;
        let (key, used) = Id::decode(buf)?;
        pos += used;
        let origin = get_u64(buf, &mut pos)? as usize;
        let hops = get_u32(buf, &mut pos)?;
        let path_us = get_u64(buf, &mut pos)?;
        let (payload, used) = P::decode(tail(buf, pos))?;
        pos += used;
        Ok((
            RouteEnvelope {
                key,
                payload,
                origin,
                hops,
                path_us,
            },
            pos,
        ))
    }

    fn encoded_len(&self) -> u64 {
        36 + self.payload.encoded_len()
    }
}

/// `[version][kind]` frame header length.
const HEADER: u64 = 2;

impl<P: Wire> Wire for PastryMsg<P> {
    const MIN_WIRE_LEN: usize = 2;

    fn encode(&self, out: &mut Vec<u8>) {
        put_u8(out, WIRE_VERSION);
        match self {
            PastryMsg::Route(env) => {
                put_u8(out, 0);
                env.encode(out);
            }
            PastryMsg::JoinRequest {
                joiner,
                rows,
                rows_done,
                hops,
            } => {
                put_u8(out, 1);
                joiner.encode(out);
                debug_assert!(*rows_done <= u16::MAX as usize);
                put_u16(out, *rows_done as u16);
                put_u32(out, *hops);
                put_vec(out, rows);
            }
            PastryMsg::JoinReply {
                z,
                rows,
                leaf,
                hops,
            } => {
                put_u8(out, 2);
                z.encode(out);
                put_u32(out, *hops);
                put_vec(out, rows);
                put_vec(out, leaf);
            }
            PastryMsg::NeighborhoodRequest => put_u8(out, 3),
            PastryMsg::NeighborhoodReply { members } => {
                put_u8(out, 4);
                put_vec(out, members);
            }
            PastryMsg::Announce { from } => {
                put_u8(out, 5);
                from.encode(out);
            }
            PastryMsg::LeafRequest => put_u8(out, 6),
            PastryMsg::LeafReply { members } => {
                put_u8(out, 7);
                put_vec(out, members);
            }
            PastryMsg::RowRequest { row } => {
                put_u8(out, 8);
                debug_assert!(*row <= u16::MAX as usize);
                put_u16(out, *row as u16);
            }
            PastryMsg::RowReply { entries } => {
                put_u8(out, 9);
                put_vec(out, entries);
            }
            PastryMsg::RepairRequest { row, col } => {
                put_u8(out, 10);
                debug_assert!(*row <= u16::MAX as usize && *col <= u16::MAX as usize);
                put_u16(out, *row as u16);
                put_u16(out, *col as u16);
            }
            PastryMsg::RepairReply { entry } => {
                put_u8(out, 11);
                entry.encode(out);
            }
            PastryMsg::Heartbeat => put_u8(out, 12),
            PastryMsg::HeartbeatAck => put_u8(out, 13),
            PastryMsg::AppDirect { payload } => {
                put_u8(out, 14);
                payload.encode(out);
            }
        }
    }

    fn decode(buf: &[u8]) -> Result<(PastryMsg<P>, usize), DecodeError> {
        let mut pos = 0;
        let version = get_u8(buf, &mut pos)?;
        if version != WIRE_VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let kind = get_u8(buf, &mut pos)?;
        let msg = match kind {
            0 => {
                let (env, used) = RouteEnvelope::decode(tail(buf, pos))?;
                pos += used;
                PastryMsg::Route(env)
            }
            1 => {
                let (joiner, used) = NodeHandle::decode(tail(buf, pos))?;
                pos += used;
                let rows_done = get_u16(buf, &mut pos)? as usize;
                let hops = get_u32(buf, &mut pos)?;
                let rows = get_vec(buf, &mut pos)?;
                PastryMsg::JoinRequest {
                    joiner,
                    rows,
                    rows_done,
                    hops,
                }
            }
            2 => {
                let (z, used) = NodeHandle::decode(tail(buf, pos))?;
                pos += used;
                let hops = get_u32(buf, &mut pos)?;
                let rows = get_vec(buf, &mut pos)?;
                let leaf = get_vec(buf, &mut pos)?;
                PastryMsg::JoinReply {
                    z,
                    rows,
                    leaf,
                    hops,
                }
            }
            3 => PastryMsg::NeighborhoodRequest,
            4 => PastryMsg::NeighborhoodReply {
                members: get_vec(buf, &mut pos)?,
            },
            5 => {
                let (from, used) = NodeHandle::decode(tail(buf, pos))?;
                pos += used;
                PastryMsg::Announce { from }
            }
            6 => PastryMsg::LeafRequest,
            7 => PastryMsg::LeafReply {
                members: get_vec(buf, &mut pos)?,
            },
            8 => PastryMsg::RowRequest {
                row: get_u16(buf, &mut pos)? as usize,
            },
            9 => PastryMsg::RowReply {
                entries: get_vec(buf, &mut pos)?,
            },
            10 => {
                let row = get_u16(buf, &mut pos)? as usize;
                let col = get_u16(buf, &mut pos)? as usize;
                PastryMsg::RepairRequest { row, col }
            }
            11 => {
                let (entry, used) = Option::<NodeHandle>::decode(tail(buf, pos))?;
                pos += used;
                PastryMsg::RepairReply { entry }
            }
            12 => PastryMsg::Heartbeat,
            13 => PastryMsg::HeartbeatAck,
            14 => {
                let (payload, used) = P::decode(tail(buf, pos))?;
                pos += used;
                PastryMsg::AppDirect { payload }
            }
            other => return Err(DecodeError::UnknownKind(other)),
        };
        Ok((msg, pos))
    }

    fn encoded_len(&self) -> u64 {
        const HANDLE: u64 = 24;
        const VEC: u64 = 4;
        HEADER
            + match self {
                PastryMsg::Route(env) => env.encoded_len(),
                PastryMsg::JoinRequest { rows, .. } => {
                    HANDLE + 2 + 4 + VEC + HANDLE * rows.len() as u64
                }
                PastryMsg::JoinReply { rows, leaf, .. } => {
                    HANDLE + 4 + 2 * VEC + HANDLE * (rows.len() + leaf.len()) as u64
                }
                PastryMsg::NeighborhoodRequest => 0,
                PastryMsg::NeighborhoodReply { members } => VEC + HANDLE * members.len() as u64,
                PastryMsg::Announce { .. } => HANDLE,
                PastryMsg::LeafRequest => 0,
                PastryMsg::LeafReply { members } => VEC + HANDLE * members.len() as u64,
                PastryMsg::RowRequest { .. } => 2,
                PastryMsg::RowReply { entries } => VEC + HANDLE * entries.len() as u64,
                PastryMsg::RepairRequest { .. } => 4,
                PastryMsg::RepairReply { entry } => 1 + HANDLE * entry.is_some() as u64,
                PastryMsg::Heartbeat => 0,
                PastryMsg::HeartbeatAck => 0,
                PastryMsg::AppDirect { payload } => payload.encoded_len(),
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_handle_layout() {
        let h = NodeHandle::new(Id(0x0102), 3);
        let bytes = h.to_wire();
        assert_eq!(bytes.len(), 24);
        // Little-endian id: low bytes first.
        assert_eq!(&bytes[..3], &[0x02, 0x01, 0x00]);
        assert_eq!(bytes[16], 3);

        let msg: PastryMsg<()> = PastryMsg::Heartbeat;
        assert_eq!(msg.to_wire(), vec![WIRE_VERSION, 12]);
    }

    #[test]
    fn unknown_kind_and_bad_version_are_typed_errors() {
        assert_eq!(
            PastryMsg::<()>::decode(&[WIRE_VERSION, 99]).unwrap_err(),
            DecodeError::UnknownKind(99)
        );
        assert_eq!(
            PastryMsg::<()>::decode(&[0, 12]).unwrap_err(),
            DecodeError::BadVersion(0)
        );
        assert_eq!(
            PastryMsg::<()>::decode(&[WIRE_VERSION]).unwrap_err(),
            DecodeError::Truncated
        );
    }
}
