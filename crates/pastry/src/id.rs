//! 128-bit circular node identifiers and digit arithmetic.
//!
//! PAST assigns each node "a 128-bit node identifier (nodeId)" and routes a
//! fileId "towards the node whose nodeId is numerically closest to the 128
//! most significant bits of the fileId". For routing, "nodeIds and fileIds
//! are thought of as a sequence of digits with base 2^b".

use std::fmt;

/// A 128-bit identifier on the Pastry ring.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Id(pub u128);

/// Number of bits in an [`Id`].
pub const ID_BITS: usize = 128;

impl Id {
    /// Builds an id from 16 big-endian bytes.
    pub fn from_be_bytes(bytes: [u8; 16]) -> Id {
        Id(u128::from_be_bytes(bytes))
    }

    /// The `i`-th digit counted from the most significant end, base `2^b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` does not divide 128 or `i` is out of range.
    pub fn digit(&self, i: usize, b: u8) -> u8 {
        let b = b as usize;
        assert!(b > 0 && 128 % b == 0, "b must divide 128");
        assert!(i < 128 / b, "digit index out of range");
        let shift = 128 - (i + 1) * b;
        ((self.0 >> shift) & ((1u128 << b) - 1)) as u8
    }

    /// Length (in digits of base `2^b`) of the longest common prefix of two
    /// ids.
    pub fn prefix_len(&self, other: &Id, b: u8) -> usize {
        let xor = self.0 ^ other.0;
        if xor == 0 {
            return 128 / b as usize;
        }
        let lead_bits = xor.leading_zeros() as usize;
        lead_bits / b as usize
    }

    /// Clockwise distance from `self` to `other` on the ring.
    pub fn cw_dist(&self, other: &Id) -> u128 {
        other.0.wrapping_sub(self.0)
    }

    /// Minimal (ring) distance between two ids.
    pub fn ring_dist(&self, other: &Id) -> u128 {
        let cw = self.cw_dist(other);
        let ccw = other.cw_dist(self);
        cw.min(ccw)
    }

    /// True if `self` lies on the clockwise arc from `from` to `to`
    /// (inclusive on both ends).
    pub fn on_cw_arc(&self, from: &Id, to: &Id) -> bool {
        from.cw_dist(self) <= from.cw_dist(to)
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Protocol parameters for a Pastry network.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Bits per digit (`b`); the paper's "configuration parameter with
    /// typical value 4". Must divide 128.
    pub b: u8,
    /// Leaf set size (`l`); the paper's "configuration parameter with
    /// typical value 32". Must be even and ≥ 2.
    pub leaf_len: usize,
    /// Neighborhood set size (`M`).
    pub neighborhood_len: usize,
    /// Probability of deviating from the best next hop when several valid
    /// next hops exist (the paper's randomized routing; "the probability
    /// distribution is heavily biased towards the best choice"). `0.0`
    /// disables randomization.
    pub route_randomization: f64,
    /// Hop TTL on routed messages. Legitimate routes take O(log N) hops;
    /// the TTL only fires when overlapping failures leave leaf sets
    /// inconsistent enough for a routing cycle (the situation behind the
    /// paper's "eventual delivery is guaranteed unless ⌊l/2⌋ adjacent
    /// nodes fail" caveat). Such messages are dropped and the client
    /// retries.
    pub max_route_hops: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            b: 4,
            leaf_len: 16,
            neighborhood_len: 16,
            route_randomization: 0.0,
            max_route_hops: 128,
        }
    }
}

impl Config {
    /// A configuration matching the HotOS paper's "typical values":
    /// `b = 4`, `l = 32`, `M = 32`.
    pub fn paper_typical() -> Config {
        Config {
            b: 4,
            leaf_len: 32,
            neighborhood_len: 32,
            route_randomization: 0.0,
            max_route_hops: 128,
        }
    }

    /// Number of digits in an id under this configuration.
    pub fn digits(&self) -> usize {
        128 / self.b as usize
    }

    /// Number of columns per routing-table row (`2^b`).
    pub fn cols(&self) -> usize {
        1 << self.b
    }

    /// Validates the invariants on the parameters.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (non-divisor `b`, odd leaf set).
    pub fn validate(&self) {
        assert!(
            self.b > 0 && 128 % self.b as usize == 0,
            "b must divide 128"
        );
        assert!(
            self.leaf_len >= 2 && self.leaf_len % 2 == 0,
            "leaf set size must be even and >= 2"
        );
        assert!(
            (0.0..=1.0).contains(&self.route_randomization),
            "randomization must be a probability"
        );
        assert!(self.max_route_hops >= 8, "TTL must allow legitimate routes");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_extract_from_msb() {
        let id = Id(0xfedc_ba98_7654_3210_0123_4567_89ab_cdef);
        assert_eq!(id.digit(0, 4), 0xf);
        assert_eq!(id.digit(1, 4), 0xe);
        assert_eq!(id.digit(31, 4), 0xf);
        assert_eq!(id.digit(0, 8), 0xfe);
        assert_eq!(id.digit(15, 8), 0xef);
        assert_eq!(id.digit(0, 1), 1);
    }

    #[test]
    #[should_panic(expected = "digit index")]
    fn digit_out_of_range_panics() {
        Id(0).digit(32, 4);
    }

    #[test]
    fn prefix_len_counts_shared_digits() {
        let a = Id(0xabcd_0000_0000_0000_0000_0000_0000_0000);
        let b = Id(0xabce_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(a.prefix_len(&b, 4), 3);
        assert_eq!(a.prefix_len(&a, 4), 32);
        let c = Id(0x1bcd_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(a.prefix_len(&c, 4), 0);
    }

    #[test]
    fn prefix_len_respects_digit_width() {
        // Ids differing in bit 126 share 0 digits at b=4 but 1 digit at b=1.
        let a = Id(0);
        let b = Id(1u128 << 126);
        assert_eq!(a.prefix_len(&b, 4), 0);
        assert_eq!(a.prefix_len(&b, 1), 1);
    }

    #[test]
    fn ring_distance_wraps() {
        let a = Id(5);
        let b = Id(u128::MAX - 4); // 10 apart across zero
        assert_eq!(a.ring_dist(&b), 10);
        assert_eq!(b.ring_dist(&a), 10);
        assert_eq!(a.ring_dist(&a), 0);
    }

    #[test]
    fn cw_dist_is_directional() {
        let a = Id(10);
        let b = Id(3);
        assert_eq!(b.cw_dist(&a), 7);
        assert_eq!(a.cw_dist(&b), u128::MAX - 6);
    }

    #[test]
    fn arcs() {
        let lo = Id(10);
        let hi = Id(20);
        assert!(Id(15).on_cw_arc(&lo, &hi));
        assert!(Id(10).on_cw_arc(&lo, &hi));
        assert!(Id(20).on_cw_arc(&lo, &hi));
        assert!(!Id(25).on_cw_arc(&lo, &hi));
        // Arc crossing zero.
        let lo = Id(u128::MAX - 5);
        let hi = Id(5);
        assert!(Id(0).on_cw_arc(&lo, &hi));
        assert!(Id(u128::MAX).on_cw_arc(&lo, &hi));
        assert!(!Id(100).on_cw_arc(&lo, &hi));
    }

    #[test]
    fn config_defaults_are_valid() {
        Config::default().validate();
        Config::paper_typical().validate();
        assert_eq!(Config::default().digits(), 32);
        assert_eq!(Config::default().cols(), 16);
        assert_eq!(Config::paper_typical().leaf_len, 32);
    }

    #[test]
    #[should_panic(expected = "b must divide")]
    fn bad_b_rejected() {
        Config {
            b: 3,
            ..Config::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "leaf set")]
    fn odd_leaf_rejected() {
        Config {
            leaf_len: 7,
            ..Config::default()
        }
        .validate();
    }
}
