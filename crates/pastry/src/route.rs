//! The Pastry routing decision.
//!
//! "In each routing step, a node normally forwards the message to a node
//! whose nodeId shares with the fileId a prefix that is at least one digit
//! longer than the prefix that the fileId shares with the present node's
//! id. If no such node exists, the message is forwarded to a node whose
//! nodeId shares a prefix with the fileId as long as the current node, but
//! is numerically closer to the fileId than the present node's id."
//!
//! The optional randomized variant implements the paper's fault-tolerance
//! mechanism: "the choice among multiple suitable nodes is random. In
//! practice, the probability distribution is heavily biased towards the
//! best choice".

use crate::handle::NodeHandle;
use crate::id::Id;
use crate::state::PastryState;
use past_crypto::rng::Rng;
use std::cmp::Reverse;

/// The outcome of one routing step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NextHop {
    /// This node is the closest it knows; deliver here.
    DeliverHere,
    /// Forward to this node.
    Forward(NodeHandle),
}

/// Computes the next hop for `key` at this node.
///
/// `rng` drives the randomized variant and is unused when
/// `cfg.route_randomization == 0.0`.
pub fn next_hop(state: &PastryState, key: &Id, rng: &mut Rng) -> NextHop {
    let b = state.cfg.b;
    // This node's own position relative to the key, shared by every case
    // below so per-candidate checks don't recompute it.
    let own_prefix = state.me.id.prefix_len(key, b);
    let own_dist = state.me.id.ring_dist(key);

    // Case 1: the key falls within the leaf set's span — deliver to the
    // numerically closest of {leaf members, self}.
    if state.leaf.covers(key) {
        match state.leaf.closest_to(key) {
            None => return NextHop::DeliverHere,
            Some(best) => {
                let best_dist = best.id.ring_dist(key);
                // Tie-break by id to make the root unique network-wide.
                if best_dist < own_dist || (best_dist == own_dist && best.id.0 < state.me.id.0) {
                    return NextHop::Forward(best);
                }
                return NextHop::DeliverHere;
            }
        }
    }

    // Case 2: the routing-table entry for the next digit.
    let col = key.digit(own_prefix, b) as usize;
    let table_hit = state.table.get(own_prefix, col);

    // No-loop invariant check: forwarding to `n` must grow the shared
    // prefix, or keep it equal while strictly shrinking the numeric
    // distance. Returns the candidate's (prefix, distance) sort key when
    // the step is valid.
    let step_key = |n: &NodeHandle| -> Option<(usize, u128)> {
        let n_prefix = n.id.prefix_len(key, b);
        if n_prefix < own_prefix {
            return None;
        }
        let n_dist = n.id.ring_dist(key);
        if n_prefix > own_prefix || n_dist < own_dist {
            Some((n_prefix, n_dist))
        } else {
            None
        }
    };

    let eps = state.cfg.route_randomization;
    if eps > 0.0 {
        // Randomized routing: gather every valid candidate (deduplicated
        // by address, first occurrence wins — the same order and content
        // `known_nodes()` would produce, keeping RNG draws identical),
        // bias toward the table hit (the "best choice").
        let mut candidates: Vec<NodeHandle> = Vec::new();
        for n in state.known_nodes_iter() {
            if step_key(&n).is_some() && !candidates.iter().any(|c| c.addr == n.addr) {
                candidates.push(n);
            }
        }
        if let Some(hit) = table_hit {
            if !candidates.iter().any(|c| c.addr == hit.addr) {
                candidates.push(hit);
            }
        }
        let best = match table_hit.or_else(|| best_fallback(state, &candidates, key)) {
            Some(b) => b,
            None => return NextHop::DeliverHere,
        };
        if candidates.len() > 1 && rng.random_bool(eps) {
            // Uniform choice among the alternatives.
            let others: Vec<&NodeHandle> =
                candidates.iter().filter(|c| c.addr != best.addr).collect();
            if !others.is_empty() {
                let pick = others[rng.random_range(0..others.len())];
                return NextHop::Forward(*pick);
            }
        }
        return NextHop::Forward(best);
    }

    if let Some(hit) = table_hit {
        return NextHop::Forward(hit);
    }

    // Case 3 (rare): no table entry — fall back to any known node with an
    // equally long prefix but numerically closer, or a longer prefix.
    // Fold over the raw iterator instead of materializing a candidate
    // list: prefer the longest prefix, then the numerically closest, then
    // (for determinism) the smallest id. Distinct nodes never compare
    // equal (ids are unique), so taking the first strict maximum matches
    // the previous collect-then-max behavior.
    let mut best: Option<((usize, Reverse<u128>, Reverse<u128>), NodeHandle)> = None;
    for n in state.known_nodes_iter() {
        if let Some((p, d)) = step_key(&n) {
            let k = (p, Reverse(d), Reverse(n.id.0));
            if best.as_ref().is_none_or(|(bk, _)| k > *bk) {
                best = Some((k, n));
            }
        }
    }
    match best {
        Some((_, next)) => NextHop::Forward(next),
        None => NextHop::DeliverHere,
    }
}

/// Among valid candidates, prefer the longest prefix, then the numerically
/// closest, then (for determinism) the smallest id.
fn best_fallback(state: &PastryState, candidates: &[NodeHandle], key: &Id) -> Option<NodeHandle> {
    candidates
        .iter()
        .max_by(|a, b| {
            let pa = a.id.prefix_len(key, state.cfg.b);
            let pb = b.id.prefix_len(key, state.cfg.b);
            pa.cmp(&pb)
                .then_with(|| b.id.ring_dist(key).cmp(&a.id.ring_dist(key)))
                .then_with(|| b.id.0.cmp(&a.id.0))
        })
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Config;
    use past_crypto::rng::Rng;

    /// Independent statement of the no-loop invariant `next_hop` must
    /// preserve: the prefix grows, or stays equal while the numeric
    /// distance strictly shrinks.
    fn valid_step(state: &PastryState, n: &NodeHandle, key: &Id) -> bool {
        let b = state.cfg.b;
        let own_prefix = state.me.id.prefix_len(key, b);
        let n_prefix = n.id.prefix_len(key, b);
        n_prefix > own_prefix
            || (n_prefix == own_prefix && n.id.ring_dist(key) < state.me.id.ring_dist(key))
    }

    fn state_with(own: u128, leaf_len: usize, others: &[(u128, usize)]) -> PastryState {
        let cfg = Config {
            leaf_len,
            neighborhood_len: 4,
            ..Config::default()
        };
        let mut s = PastryState::new(cfg, NodeHandle::new(Id(own), 0));
        for &(id, addr) in others {
            s.add_node(NodeHandle::new(Id(id), addr), 10 + addr as u64);
        }
        s
    }

    fn rng() -> Rng {
        Rng::seed_from_u64(1)
    }

    #[test]
    fn empty_state_delivers_here() {
        let s = state_with(100, 4, &[]);
        assert_eq!(next_hop(&s, &Id(12345), &mut rng()), NextHop::DeliverHere);
    }

    #[test]
    fn leaf_covered_key_goes_to_closest() {
        // Leaf half = 2; members straddle the key.
        let s = state_with(1000, 4, &[(1010, 1), (1020, 2), (990, 3), (980, 4)]);
        // Key 1009 is covered and node 1010 is closest.
        match next_hop(&s, &Id(1009), &mut rng()) {
            NextHop::Forward(h) => assert_eq!(h.addr, 1),
            other => panic!("expected forward, got {other:?}"),
        }
        // Key 1001: own node is closest.
        assert_eq!(next_hop(&s, &Id(1001), &mut rng()), NextHop::DeliverHere);
    }

    #[test]
    fn equidistant_tie_breaks_to_smaller_id() {
        // Own id 1000 and member 1010; key 1005 is equidistant (5 vs 5).
        let s = state_with(1000, 4, &[(1010, 1), (990, 2), (1020, 3), (980, 4)]);
        // Tie: member id 1010 > own 1000, so deliver here.
        assert_eq!(next_hop(&s, &Id(1005), &mut rng()), NextHop::DeliverHere);
        // Symmetric check: key 995 equidistant between 990 and 1000 ->
        // forward to 990 (smaller id).
        match next_hop(&s, &Id(995), &mut rng()) {
            NextHop::Forward(h) => assert_eq!(h.id, Id(990)),
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn table_entry_used_outside_leaf_span() {
        // Spread ids so the leaf set does not cover the key.
        let own = 0x1000_0000_0000_0000_0000_0000_0000_0000u128;
        let near1 = own + 1;
        let near2 = own + 2;
        let near3 = own - 1;
        let near4 = own - 2;
        let far = 0xf000_0000_0000_0000_0000_0000_0000_0000u128;
        let s = state_with(
            own,
            4,
            &[(near1, 1), (near2, 2), (near3, 3), (near4, 4), (far, 5)],
        );
        let key = Id(0xf100_0000_0000_0000_0000_0000_0000_0000);
        match next_hop(&s, &key, &mut rng()) {
            NextHop::Forward(h) => assert_eq!(h.addr, 5, "should use the row-0 table entry"),
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn rare_case_prefers_numerically_closer() {
        // No table entry for the key's digit, but a known node with equal
        // prefix and closer id exists (via the leaf set but not covering).
        let own = 0x1000_0000_0000_0000_0000_0000_0000_0000u128;
        let closer = 0x7000_0000_0000_0000_0000_0000_0000_0000u128;
        let s = state_with(own, 2, &[(own + 1, 1), (own - 1, 2), (closer, 3)]);
        // Key shares 0 digits with everyone; 0x8... is closer to `closer`.
        let key = Id(0x8000_0000_0000_0000_0000_0000_0000_0000);
        match next_hop(&s, &key, &mut rng()) {
            NextHop::Forward(h) => assert_eq!(h.addr, 3),
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn step_invariant_holds_for_forwards() {
        let own = 0x1000_0000_0000_0000_0000_0000_0000_0000u128;
        let others: Vec<(u128, usize)> = (1..40u128)
            .map(|i| ((i * 0x0333_1111_2222_3333u128) << 64 | i, i as usize))
            .collect();
        let s = state_with(own, 8, &others);
        let mut r = rng();
        for k in 0..50u128 {
            let key = Id(k.wrapping_mul(0x9e37_79b9_7f4a_7c15_0123_4567_89ab_cdefu128));
            if let NextHop::Forward(h) = next_hop(&s, &key, &mut r) {
                assert!(
                    valid_step(&s, &h, &key),
                    "forward to {h:?} violates invariant for key {key}"
                );
            }
        }
    }

    #[test]
    fn randomized_routing_explores_alternatives() {
        let own = 0x1000_0000_0000_0000_0000_0000_0000_0000u128;
        let mut others = vec![];
        // Several nodes all sharing digit 0xf with the key.
        for i in 0..6u128 {
            others.push((
                0xf000_0000_0000_0000_0000_0000_0000_0000u128 + (i << 96),
                10 + i as usize,
            ));
        }
        // Leaf fillers near own id.
        others.push((own + 1, 1));
        others.push((own - 1, 2));
        let mut s = state_with(own, 2, &others);
        s.cfg.route_randomization = 0.5;
        let key = Id(0xff00_0000_0000_0000_0000_0000_0000_0000);
        let mut seen = std::collections::HashSet::new();
        let mut r = rng();
        for _ in 0..200 {
            if let NextHop::Forward(h) = next_hop(&s, &key, &mut r) {
                assert!(valid_step(&s, &h, &key));
                seen.insert(h.addr);
            }
        }
        assert!(
            seen.len() > 1,
            "randomized routing should pick multiple next hops, saw {seen:?}"
        );
    }

    #[test]
    fn zero_randomization_is_deterministic() {
        let own = 0x1000_0000_0000_0000_0000_0000_0000_0000u128;
        let others: Vec<(u128, usize)> =
            (1..20u128).map(|i| ((i << 120) | i, i as usize)).collect();
        let s = state_with(own, 4, &others);
        let key = Id(0xabcd_ef00_0000_0000_0000_0000_0000_0000);
        let first = next_hop(&s, &key, &mut rng());
        for _ in 0..10 {
            assert_eq!(next_hop(&s, &key, &mut rng()), first);
        }
    }
}
