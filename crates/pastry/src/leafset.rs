//! The Pastry leaf set.
//!
//! "Each node maintains IP addresses for the nodes in its leaf set, i.e.,
//! the set of nodes with the l/2 numerically closest larger nodeIds, and the
//! l/2 nodes with numerically closest smaller nodeIds, relative to the
//! present node's nodeId."

use crate::handle::NodeHandle;
use crate::id::Id;
use past_netsim::Addr;

/// Which half of the leaf set a node falls in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Side {
    /// Numerically smaller ids (counter-clockwise neighbors).
    Smaller,
    /// Numerically larger ids (clockwise neighbors).
    Larger,
}

/// The outcome of offering a node to the leaf set.
///
/// `evicted` reports the member displaced when a nearer node filled an
/// already-full half; the caller must not silently forget it — the
/// displaced node is still live and belongs in the routing table.
#[derive(Clone, Copy, Debug, Default)]
pub struct LeafInsert {
    /// True if the set changed (the offered node was admitted).
    pub changed: bool,
    /// The member displaced to make room, if any.
    pub evicted: Option<NodeHandle>,
}

/// The leaf set of one node: up to `l/2` ring neighbors on each side,
/// each half sorted nearest-first.
#[derive(Clone, Debug)]
pub struct LeafSet {
    own: Id,
    half: usize,
    smaller: Vec<NodeHandle>,
    larger: Vec<NodeHandle>,
}

impl LeafSet {
    /// Creates an empty leaf set for `own` with `leaf_len` total capacity.
    ///
    /// # Panics
    ///
    /// Panics if `leaf_len` is odd or zero.
    pub fn new(own: Id, leaf_len: usize) -> LeafSet {
        assert!(leaf_len >= 2 && leaf_len % 2 == 0);
        LeafSet {
            own,
            half: leaf_len / 2,
            smaller: Vec::new(),
            larger: Vec::new(),
        }
    }

    /// The side of the ring `id` falls on relative to the owner.
    pub fn side_of(&self, id: &Id) -> Side {
        let cw = self.own.cw_dist(id);
        let ccw = id.cw_dist(&self.own);
        if cw <= ccw {
            Side::Larger
        } else {
            Side::Smaller
        }
    }

    /// Offers a node for membership.
    ///
    /// Duplicates are rejected by address *and* by id: two handles with
    /// the same id but different addresses cannot both be ring members,
    /// and admitting the second would desynchronize the set from the
    /// global ring (invariant I2).
    ///
    /// When a nearer node displaces the farthest member of a full half,
    /// the displaced handle is returned in [`LeafInsert::evicted`] so the
    /// caller can demote it to the routing table instead of forgetting a
    /// live node.
    pub fn insert(&mut self, h: NodeHandle) -> LeafInsert {
        if h.id == self.own || self.contains_addr(h.addr) || self.contains_id(&h.id) {
            return LeafInsert::default();
        }
        let own = self.own;
        let half = self.half;
        let (vec, key): (&mut Vec<NodeHandle>, fn(&Id, &Id) -> u128) = match self.side_of(&h.id) {
            Side::Larger => (&mut self.larger, |own, id| own.cw_dist(id)),
            Side::Smaller => (&mut self.smaller, |own, id| id.cw_dist(own)),
        };
        let pos = vec
            .iter()
            .position(|m| key(&own, &m.id) > key(&own, &h.id))
            .unwrap_or(vec.len());
        if pos >= half {
            return LeafInsert::default();
        }
        vec.insert(pos, h);
        let evicted = if vec.len() > half { vec.pop() } else { None };
        LeafInsert {
            changed: true,
            evicted,
        }
    }

    /// Removes the member at `addr`, returning it.
    pub fn remove_addr(&mut self, addr: Addr) -> Option<NodeHandle> {
        for vec in [&mut self.smaller, &mut self.larger] {
            if let Some(pos) = vec.iter().position(|m| m.addr == addr) {
                return Some(vec.remove(pos));
            }
        }
        None
    }

    /// True if `addr` is a member.
    pub fn contains_addr(&self, addr: Addr) -> bool {
        self.smaller
            .iter()
            .chain(&self.larger)
            .any(|m| m.addr == addr)
    }

    /// True if a member carries `id`.
    pub fn contains_id(&self, id: &Id) -> bool {
        self.smaller.iter().chain(&self.larger).any(|m| m.id == *id)
    }

    /// Members per half (`l/2`).
    pub fn half(&self) -> usize {
        self.half
    }

    /// All members, smaller side first (each half nearest-first).
    pub fn members(&self) -> impl Iterator<Item = &NodeHandle> {
        self.smaller.iter().chain(self.larger.iter())
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.smaller.len() + self.larger.len()
    }

    /// True if the leaf set is empty (a brand-new or solitary node).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if either half has spare capacity.
    ///
    /// An under-full leaf set means the node knows every ring neighbor it
    /// has, so the leaf set covers the entire id space.
    pub fn underfull(&self) -> bool {
        self.smaller.len() < self.half || self.larger.len() < self.half
    }

    /// The farthest member on `side`, if any (used for leaf-set repair:
    /// "contact the live node with the largest index on the side of the
    /// failed node").
    pub fn extreme(&self, side: Side) -> Option<NodeHandle> {
        match side {
            Side::Smaller => self.smaller.last().copied(),
            Side::Larger => self.larger.last().copied(),
        }
    }

    /// Members on `side`, nearest first.
    pub fn side_members(&self, side: Side) -> &[NodeHandle] {
        match side {
            Side::Smaller => &self.smaller,
            Side::Larger => &self.larger,
        }
    }

    /// True if `key` falls within the id segment covered by the leaf set.
    ///
    /// While underfull the leaf set covers everything (the node knows all
    /// its ring neighbors).
    pub fn covers(&self, key: &Id) -> bool {
        match (self.smaller.last(), self.larger.last()) {
            (Some(lo), Some(hi)) if !self.underfull() => key.on_cw_arc(&lo.id, &hi.id),
            // Underfull (or a side is empty): the node knows its whole
            // neighborhood, so it covers the entire segment.
            _ => true,
        }
    }

    /// The member numerically closest to `key` (ties broken by smaller id),
    /// or `None` if the set is empty.
    pub fn closest_to(&self, key: &Id) -> Option<NodeHandle> {
        self.members()
            .copied()
            .min_by_key(|m| (m.id.ring_dist(key), m.id.0))
    }

    /// Members sorted by ring distance to `key`, nearest first (used to
    /// choose the k replica holders around a fileId).
    pub fn sorted_by_dist(&self, key: &Id) -> Vec<NodeHandle> {
        let mut v: Vec<NodeHandle> = self.members().copied().collect();
        v.sort_by_key(|m| (m.id.ring_dist(key), m.id.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(id: u128, addr: Addr) -> NodeHandle {
        NodeHandle::new(Id(id), addr)
    }

    fn set() -> LeafSet {
        LeafSet::new(Id(1000), 4) // half = 2
    }

    #[test]
    fn sides_and_insertion_order() {
        let mut ls = set();
        assert!(ls.insert(h(1010, 1)).changed);
        assert!(ls.insert(h(1005, 2)).changed);
        assert!(ls.insert(h(995, 3)).changed);
        assert!(ls.insert(h(990, 4)).changed);
        assert_eq!(
            ls.side_members(Side::Larger)
                .iter()
                .map(|m| m.addr)
                .collect::<Vec<_>>(),
            vec![2, 1]
        );
        assert_eq!(
            ls.side_members(Side::Smaller)
                .iter()
                .map(|m| m.addr)
                .collect::<Vec<_>>(),
            vec![3, 4]
        );
    }

    #[test]
    fn capacity_keeps_nearest() {
        let mut ls = set();
        ls.insert(h(1010, 1));
        ls.insert(h(1020, 2));
        // Nearer node displaces the farthest once the half is full.
        assert!(ls.insert(h(1005, 3)).changed);
        let addrs: Vec<Addr> = ls
            .side_members(Side::Larger)
            .iter()
            .map(|m| m.addr)
            .collect();
        assert_eq!(addrs, vec![3, 1]);
        // The displaced node (1020) is gone and a farther node is
        // rejected outright.
        assert!(!ls.insert(h(1030, 4)).changed);
        assert_eq!(ls.len(), 2);
    }

    #[test]
    fn displaced_member_is_returned_not_dropped() {
        // Regression: `insert` used to truncate the half silently, losing
        // the displaced live node.
        let mut ls = set();
        ls.insert(h(1010, 1));
        ls.insert(h(1020, 2));
        let out = ls.insert(h(1005, 3));
        assert!(out.changed);
        let evicted = out.evicted.expect("full half must report the evictee");
        assert_eq!(evicted.addr, 2);
        assert_eq!(evicted.id, Id(1020));
        // No eviction while a half has room.
        let mut ls = set();
        assert!(ls.insert(h(1010, 1)).evicted.is_none());
        assert!(ls.insert(h(1005, 2)).evicted.is_none());
    }

    #[test]
    fn rejects_own_id_and_duplicates() {
        let mut ls = set();
        assert!(!ls.insert(h(1000, 9)).changed);
        assert!(ls.insert(h(1001, 1)).changed);
        assert!(!ls.insert(h(1001, 1)).changed);
        assert_eq!(ls.len(), 1);
    }

    #[test]
    fn rejects_duplicate_id_with_different_addr() {
        // Regression: dedup was by addr only, so two handles with the
        // same id but different addrs could coexist in one half.
        let mut ls = set();
        assert!(ls.insert(h(1001, 1)).changed);
        assert!(!ls.insert(h(1001, 2)).changed, "same id, new addr");
        assert_eq!(ls.len(), 1);
        assert_eq!(ls.side_members(Side::Larger)[0].addr, 1);
    }

    #[test]
    fn coverage_requires_full_halves() {
        let mut ls = set();
        // Underfull: covers everything.
        assert!(ls.covers(&Id(55)));
        ls.insert(h(1010, 1));
        ls.insert(h(1020, 2));
        ls.insert(h(990, 3));
        ls.insert(h(980, 4));
        assert!(!ls.underfull());
        assert!(ls.covers(&Id(1000)));
        assert!(ls.covers(&Id(985)));
        assert!(ls.covers(&Id(1020)));
        assert!(!ls.covers(&Id(55)));
        assert!(!ls.covers(&Id(2000)));
    }

    #[test]
    fn coverage_wraps_around_zero() {
        let mut ls = LeafSet::new(Id(5), 4);
        ls.insert(h(10, 1));
        ls.insert(h(20, 2));
        ls.insert(h(u128::MAX - 2, 3));
        ls.insert(h(u128::MAX - 10, 4));
        assert!(ls.covers(&Id(0)));
        assert!(ls.covers(&Id(u128::MAX - 5)));
        assert!(!ls.covers(&Id(1 << 100)));
    }

    #[test]
    fn closest_to_prefers_ring_distance() {
        let mut ls = set();
        ls.insert(h(1010, 1));
        ls.insert(h(990, 2));
        assert_eq!(ls.closest_to(&Id(1009)).unwrap().addr, 1);
        assert_eq!(ls.closest_to(&Id(991)).unwrap().addr, 2);
        assert!(set().closest_to(&Id(0)).is_none());
    }

    #[test]
    fn remove_and_extremes() {
        let mut ls = set();
        ls.insert(h(1010, 1));
        ls.insert(h(1005, 2));
        assert_eq!(ls.extreme(Side::Larger).unwrap().addr, 1);
        assert_eq!(ls.remove_addr(1).unwrap().addr, 1);
        assert_eq!(ls.extreme(Side::Larger).unwrap().addr, 2);
        assert!(ls.remove_addr(99).is_none());
        assert!(ls.extreme(Side::Smaller).is_none());
    }

    #[test]
    fn sorted_by_dist_orders_members() {
        let mut ls = set();
        ls.insert(h(1010, 1));
        ls.insert(h(1005, 2));
        ls.insert(h(995, 3));
        let order: Vec<Addr> = ls
            .sorted_by_dist(&Id(1006))
            .iter()
            .map(|m| m.addr)
            .collect();
        assert_eq!(order, vec![2, 1, 3]);
    }
}
