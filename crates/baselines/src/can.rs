//! CAN baseline (Ratnasamy et al., SIGCOMM 2001).
//!
//! The PAST paper: "CAN routes messages in a d-dimensional space, where
//! each node maintains a routing table with O(d) entries and any node can
//! be reached in O(d·N^(1/d)) routing hops. Unlike Pastry, the routing
//! table does not grow with the network size, but the number of routing
//! hops grows faster than log N." This module implements CAN's zone
//! splitting and greedy torus routing on the shared simulator (E11).

use past_netsim::{Addr, Ctx, Engine, Message, NodeLogic, SimTime, Topology};
use past_pastry::Id;

/// A CAN key: a point in the d-dimensional unit torus.
pub type Point = Vec<f64>;

/// Maps a 128-bit id to a point in `[0,1)^d` (16 bits per coordinate).
pub fn id_to_point(id: &Id, d: usize) -> Point {
    assert!(d >= 1 && d <= 8, "1..=8 dimensions supported");
    (0..d)
        .map(|i| {
            let chunk = (id.0 >> (128 - 16 * (i + 1))) & 0xffff;
            chunk as f64 / 65536.0
        })
        .collect()
}

/// One-dimensional torus distance.
fn torus_1d(a: f64, b: f64) -> f64 {
    let d = (a - b).abs();
    d.min(1.0 - d)
}

/// A rectangular zone of the torus.
#[derive(Clone, Debug, PartialEq)]
pub struct Zone {
    /// Inclusive lower corner.
    pub lo: Point,
    /// Exclusive upper corner.
    pub hi: Point,
}

impl Zone {
    /// The full torus in `d` dimensions.
    fn full(d: usize) -> Zone {
        Zone {
            lo: vec![0.0; d],
            hi: vec![1.0; d],
        }
    }

    /// True if `p` lies within the zone.
    pub fn contains(&self, p: &[f64]) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(p)
            .all(|((lo, hi), x)| x >= lo && x < hi)
    }

    /// Torus distance from `p` to the nearest point of the zone.
    pub fn dist_to(&self, p: &[f64]) -> f64 {
        let mut acc = 0.0;
        for i in 0..p.len() {
            // Closest coordinate of the box to p[i] on the circle.
            if p[i] >= self.lo[i] && p[i] < self.hi[i] {
                continue;
            }
            let d = torus_1d(p[i], self.lo[i]).min(torus_1d(p[i], self.hi[i]));
            acc += d * d;
        }
        acc.sqrt()
    }

    /// True if the zones abut in exactly one dimension and overlap in all
    /// others (torus adjacency).
    pub fn adjacent(&self, other: &Zone) -> bool {
        let d = self.lo.len();
        let mut abut = 0;
        for i in 0..d {
            let overlap = self.lo[i] < other.hi[i] && other.lo[i] < self.hi[i];
            let touch = (self.hi[i] - other.lo[i]).abs() < 1e-12
                || (other.hi[i] - self.lo[i]).abs() < 1e-12
                // Torus wrap: 0 and 1 touch.
                || ((self.hi[i] - 1.0).abs() < 1e-12 && other.lo[i].abs() < 1e-12)
                || ((other.hi[i] - 1.0).abs() < 1e-12 && self.lo[i].abs() < 1e-12);
            if overlap {
                continue;
            }
            if touch {
                abut += 1;
            } else {
                return false;
            }
        }
        abut == 1
    }
}

/// A CAN lookup in flight.
#[derive(Clone, Debug)]
pub struct CanLookup {
    /// The target point.
    pub target: Point,
    /// The originating node.
    pub origin: Addr,
    /// Hops so far.
    pub hops: u32,
    /// Accumulated path delay (µs).
    pub path_us: u64,
}

/// CAN wire messages.
#[derive(Clone, Debug)]
pub enum CanMsg {
    /// A greedy-routed lookup.
    Lookup(CanLookup),
}

impl Message for CanMsg {
    const KINDS: &'static [&'static str] = &["can_lookup"];

    fn kind_id(&self) -> usize {
        let CanMsg::Lookup(_) = self;
        0
    }

    fn wire_size(&self) -> u64 {
        // Exact encoded length from the codec in `crate::wire`.
        use past_wire::Wire;
        self.encoded_len()
    }
}

/// A delivered CAN lookup.
#[derive(Clone, Debug)]
pub struct CanDelivery {
    /// The originating node.
    pub origin: Addr,
    /// The zone owner that received the lookup.
    pub delivered_at: Addr,
    /// Overlay hops.
    pub hops: u32,
    /// Total path delay (µs).
    pub path_us: u64,
    /// Completion time.
    pub at: SimTime,
}

/// One CAN node: its zone and neighbor set.
pub struct CanNode {
    /// The owned zone.
    pub zone: Zone,
    /// Adjacent zones and their owners.
    pub neighbors: Vec<(Zone, Addr)>,
}

impl NodeLogic for CanNode {
    type Msg = CanMsg;
    type Out = CanDelivery;

    fn on_message(&mut self, _from: Addr, msg: CanMsg, ctx: &mut Ctx<'_, CanMsg, CanDelivery>) {
        let CanMsg::Lookup(mut lk) = msg;
        if self.zone.contains(&lk.target) || lk.hops > 10_000 {
            ctx.emit(CanDelivery {
                origin: lk.origin,
                delivered_at: ctx.me,
                hops: lk.hops,
                path_us: lk.path_us,
                at: ctx.now,
            });
            return;
        }
        // Greedy: forward to the neighbor whose zone is closest to the
        // target (ties broken by address for determinism).
        let next = self
            .neighbors
            .iter()
            .min_by(|(za, aa), (zb, ab)| {
                // total_cmp: a total order even on NaN, so the winner
                // never depends on iteration order (rule D4).
                za.dist_to(&lk.target)
                    .total_cmp(&zb.dist_to(&lk.target))
                    .then(aa.cmp(ab))
            })
            .map(|(_, a)| *a);
        match next {
            Some(next) => {
                lk.hops += 1;
                lk.path_us += ctx.delay_to(next);
                ctx.send(next, CanMsg::Lookup(lk));
            }
            None => {
                // Single-node network: deliver here.
                ctx.emit(CanDelivery {
                    origin: lk.origin,
                    delivered_at: ctx.me,
                    hops: lk.hops,
                    path_us: lk.path_us,
                    at: ctx.now,
                });
            }
        }
    }
}

/// A CAN overlay bound to the simulator engine.
pub struct CanSim<T: Topology> {
    /// The underlying engine.
    pub engine: Engine<CanNode, T>,
    dims: usize,
}

impl<T: Topology> CanSim<T> {
    /// Builds a CAN by sequential random-point joins: node `i`'s join
    /// point is derived from `ids[i]`, and it splits the zone that
    /// contains it (longest-dimension split, as in the CAN paper).
    pub fn build(topo: T, seed: u64, ids: &[Id], dims: usize) -> CanSim<T> {
        let n = ids.len();
        assert!(n > 0);
        // Zones and adjacency maintained incrementally during splits.
        let mut zones: Vec<Zone> = vec![Zone::full(dims)];
        let mut neigh: Vec<Vec<usize>> = vec![vec![]];
        for (i, id) in ids.iter().enumerate().skip(1) {
            let p = id_to_point(id, dims);
            let owner = zones
                .iter()
                .position(|z| z.contains(&p))
                .expect("zones tile the torus");
            // Split the widest dimension of the owner's zone.
            let z = zones[owner].clone();
            let split_dim = (0..dims)
                .max_by(|&a, &b| (z.hi[a] - z.lo[a]).total_cmp(&(z.hi[b] - z.lo[b])))
                .expect("dims >= 1");
            let mid = (z.lo[split_dim] + z.hi[split_dim]) / 2.0;
            let mut lower = z.clone();
            lower.hi[split_dim] = mid;
            let mut upper = z.clone();
            upper.lo[split_dim] = mid;
            // The old owner keeps the half containing... CAN gives the
            // joiner the half with the join point; we follow that.
            let (keep, give) = if upper.contains(&p) {
                (lower, upper)
            } else {
                (upper, lower)
            };
            zones[owner] = keep;
            zones.push(give);
            neigh.push(Vec::new());
            let new_idx = i;
            // Re-link only the edges that the split could have changed:
            // owner↔old-neighbors, newcomer↔old-neighbors, owner↔newcomer.
            // Old-neighbor↔old-neighbor edges are untouched by the split.
            let old_neighbors = std::mem::take(&mut neigh[owner]);
            for &x in &old_neighbors {
                neigh[x].retain(|&y| y != owner);
            }
            for &x in &old_neighbors {
                if zones[owner].adjacent(&zones[x]) {
                    neigh[owner].push(x);
                    neigh[x].push(owner);
                }
                if zones[new_idx].adjacent(&zones[x]) {
                    neigh[new_idx].push(x);
                    neigh[x].push(new_idx);
                }
            }
            if zones[owner].adjacent(&zones[new_idx]) {
                neigh[owner].push(new_idx);
                neigh[new_idx].push(owner);
            }
        }
        let nodes: Vec<CanNode> = (0..n)
            .map(|i| CanNode {
                zone: zones[i].clone(),
                neighbors: neigh[i].iter().map(|&j| (zones[j].clone(), j)).collect(),
            })
            .collect();
        CanSim {
            engine: Engine::new(topo, nodes, seed),
            dims,
        }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Starts a lookup for `key` from node `from`.
    pub fn lookup(&mut self, from: Addr, key: Id) {
        let target = id_to_point(&key, self.dims);
        self.engine.inject(
            from,
            from,
            CanMsg::Lookup(CanLookup {
                target,
                origin: from,
                hops: 0,
                path_us: 0,
            }),
            0,
        );
    }

    /// Runs to quiescence and returns deliveries.
    pub fn drain(&mut self) -> Vec<CanDelivery> {
        self.engine.run_until_quiet(10_000_000);
        self.engine
            .drain_outputs()
            .into_iter()
            .map(|(_, _, d)| d)
            .collect()
    }

    /// Ground truth: the owner of the zone containing `key`'s point.
    pub fn true_owner(&self, key: &Id) -> Addr {
        let p = id_to_point(key, self.dims);
        (0..self.engine.len())
            .find(|&a| self.engine.node(a).zone.contains(&p))
            .expect("zones tile the torus")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use past_crypto::rng::Rng;
    use past_netsim::Sphere;
    use past_pastry::random_ids;

    fn build(n: usize, d: usize, seed: u64) -> CanSim<Sphere> {
        let mut rng = Rng::seed_from_u64(seed);
        let ids = random_ids(n, &mut rng);
        CanSim::build(Sphere::new(n, seed), seed, &ids, d)
    }

    #[test]
    fn zones_tile_the_torus() {
        let sim = build(200, 2, 1);
        // Total area must be 1.
        let area: f64 = (0..200)
            .map(|a| {
                let z = &sim.engine.node(a).zone;
                (z.hi[0] - z.lo[0]) * (z.hi[1] - z.lo[1])
            })
            .sum();
        assert!((area - 1.0).abs() < 1e-9, "area = {area}");
        // Every node has at least one neighbor.
        for a in 0..200 {
            assert!(!sim.engine.node(a).neighbors.is_empty());
        }
    }

    #[test]
    fn lookups_reach_the_zone_owner() {
        let mut sim = build(150, 2, 2);
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..100 {
            let key = Id(rng.random());
            let from = rng.random_range(0..150);
            sim.lookup(from, key);
            let recs = sim.drain();
            assert_eq!(recs.len(), 1);
            assert_eq!(recs[0].delivered_at, sim.true_owner(&key));
        }
    }

    #[test]
    fn adjacency_is_symmetric() {
        let sim = build(100, 3, 3);
        for a in 0..100 {
            for (zb, b) in &sim.engine.node(a).neighbors {
                assert!(sim.engine.node(a).zone.adjacent(zb));
                assert!(
                    sim.engine
                        .node(*b)
                        .neighbors
                        .iter()
                        .any(|(_, back)| *back == a),
                    "node {b} should link back to {a}"
                );
            }
        }
    }

    #[test]
    fn hops_grow_faster_than_pastry_log() {
        // d=2: expected hops ~ sqrt(N)/2 per dimension pair; at N = 1024
        // that's well above Pastry's log16(1024) = 2.5.
        let mut sim = build(1024, 2, 4);
        let mut rng = Rng::seed_from_u64(7);
        let mut hops = 0u64;
        let trials = 200;
        for _ in 0..trials {
            let key = Id(rng.random());
            let from = rng.random_range(0..1024);
            sim.lookup(from, key);
            hops += sim.drain()[0].hops as u64;
        }
        let avg = hops as f64 / trials as f64;
        assert!(avg > 5.0, "CAN hops should exceed Pastry's ~2.5: {avg}");
        assert!(avg < 200.0, "sanity upper bound: {avg}");
    }

    #[test]
    fn point_mapping_in_unit_cube() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..100 {
            let id = Id(rng.random());
            for d in 1..=8 {
                let p = id_to_point(&id, d);
                assert_eq!(p.len(), d);
                assert!(p.iter().all(|x| (0.0..1.0).contains(x)));
            }
        }
    }

    #[test]
    fn zone_distance_handles_wrap() {
        let z = Zone {
            lo: vec![0.9, 0.0],
            hi: vec![1.0, 1.0],
        };
        // A point at x=0.05 is 0.05 away across the wrap, not 0.85.
        let d = z.dist_to(&[0.05, 0.5]);
        assert!(d < 0.06, "wrap distance {d}");
    }
}
