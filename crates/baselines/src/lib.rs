//! Baseline peer-to-peer lookup schemes for comparison with Pastry.
//!
//! The PAST paper's related-work section positions Pastry against Chord
//! ("no explicit effort to achieve good network locality") and CAN
//! ("the number of routing hops grows faster than log N"). Both are
//! implemented here on the same deterministic simulator and the same
//! topologies so experiment E11 compares hop counts and locality on equal
//! footing.

pub mod can;
pub mod chord;
pub mod wire;

pub use can::{id_to_point, CanDelivery, CanSim};
pub use chord::{ChordDelivery, ChordSim};
