//! Chord baseline (Stoica et al., SIGCOMM 2001).
//!
//! The PAST paper positions Chord as the closest relative: "instead of
//! routing based on address prefixes, Chord forwards messages based on
//! numerical difference with the destination address. Unlike Pastry, Chord
//! makes no explicit effort to achieve good network locality." This module
//! implements Chord's finger-table routing over the same simulator and
//! topologies so the comparison (E11) runs on equal footing.

use past_netsim::{Addr, Ctx, Engine, Message, NodeLogic, SimTime, Topology};
use past_pastry::Id;

/// Number of finger-table entries (one per id bit).
pub const M_BITS: usize = 128;

/// A Chord lookup in flight.
#[derive(Clone, Debug)]
pub struct ChordLookup {
    /// The sought key.
    pub key: Id,
    /// The originating node.
    pub origin: Addr,
    /// Hops so far.
    pub hops: u32,
    /// Accumulated path delay (µs).
    pub path_us: u64,
    /// Set when the previous hop determined the receiver is responsible.
    pub terminal: bool,
}

/// Chord wire messages.
#[derive(Clone, Debug)]
pub enum ChordMsg {
    /// A lookup making its way around the ring.
    Lookup(ChordLookup),
}

impl Message for ChordMsg {
    const KINDS: &'static [&'static str] = &["chord_lookup"];

    fn kind_id(&self) -> usize {
        let ChordMsg::Lookup(_) = self;
        0
    }

    fn wire_size(&self) -> u64 {
        // Exact encoded length from the codec in `crate::wire`.
        use past_wire::Wire;
        self.encoded_len()
    }
}

/// A delivered Chord lookup.
#[derive(Clone, Copy, Debug)]
pub struct ChordDelivery {
    /// The sought key.
    pub key: Id,
    /// The originating node.
    pub origin: Addr,
    /// The responsible node that received the lookup.
    pub delivered_at: Addr,
    /// Overlay hops.
    pub hops: u32,
    /// Total path delay (µs).
    pub path_us: u64,
    /// Completion time.
    pub at: SimTime,
}

/// One Chord node: successor pointer, finger table, successor list.
pub struct ChordNode {
    /// This node's id.
    pub id: Id,
    /// Finger `i` targets `id + 2^i`; entries are deduplicated.
    fingers: Vec<(Id, Addr)>,
    /// Immediate successor.
    successor: (Id, Addr),
}

impl ChordNode {
    /// True if `key` falls in the half-open ring interval `(self, succ]`.
    fn owns_via_successor(&self, key: &Id) -> bool {
        // key in (n, succ]: cw distance from n to key <= cw dist to succ,
        // and key != n.
        let to_key = self.id.cw_dist(key);
        let to_succ = self.id.cw_dist(&self.successor.0);
        to_key != 0 && to_key <= to_succ
    }

    /// Closest preceding finger for `key`: the finger farthest along the
    /// ring that still precedes `key`.
    fn closest_preceding(&self, key: &Id) -> Option<(Id, Addr)> {
        let span = self.id.cw_dist(key);
        self.fingers
            .iter()
            .filter(|(fid, _)| {
                let d = self.id.cw_dist(fid);
                d > 0 && d < span
            })
            .max_by_key(|(fid, _)| self.id.cw_dist(fid))
            .copied()
    }
}

impl NodeLogic for ChordNode {
    type Msg = ChordMsg;
    type Out = ChordDelivery;

    fn on_message(
        &mut self,
        _from: Addr,
        msg: ChordMsg,
        ctx: &mut Ctx<'_, ChordMsg, ChordDelivery>,
    ) {
        let ChordMsg::Lookup(mut lk) = msg;
        // Am I the responsible node? Either the previous hop determined
        // succ(key) = me, or the key hits my id exactly.
        let to_key = self.id.cw_dist(&lk.key);
        if lk.terminal || to_key == 0 || self.successor.1 == ctx.me {
            ctx.emit(ChordDelivery {
                key: lk.key,
                origin: lk.origin,
                delivered_at: ctx.me,
                hops: lk.hops,
                path_us: lk.path_us,
                at: ctx.now,
            });
            return;
        }
        if self.owns_via_successor(&lk.key) {
            // The successor is responsible: final hop.
            let (_, saddr) = self.successor;
            lk.hops += 1;
            lk.path_us += ctx.delay_to(saddr);
            lk.terminal = true;
            ctx.send(saddr, ChordMsg::Lookup(lk));
            return;
        }
        match self.closest_preceding(&lk.key) {
            Some((_, faddr)) => {
                lk.hops += 1;
                lk.path_us += ctx.delay_to(faddr);
                ctx.send(faddr, ChordMsg::Lookup(lk));
            }
            None => {
                // No finger precedes the key: fall back to the successor.
                let (_, saddr) = self.successor;
                lk.hops += 1;
                lk.path_us += ctx.delay_to(saddr);
                ctx.send(saddr, ChordMsg::Lookup(lk));
            }
        }
    }
}

/// A Chord ring bound to the simulator engine.
pub struct ChordSim<T: Topology> {
    /// The underlying engine.
    pub engine: Engine<ChordNode, T>,
}

impl<T: Topology> ChordSim<T> {
    /// Builds a stabilized ring statically from `ids` (node `i` at
    /// topology slot `i`).
    pub fn build(topo: T, seed: u64, ids: &[Id]) -> ChordSim<T> {
        let n = ids.len();
        assert!(n > 0);
        let mut sorted: Vec<(Id, Addr)> = ids.iter().enumerate().map(|(a, &id)| (id, a)).collect();
        sorted.sort_by_key(|(id, _)| id.0);

        // succ(x): first node clockwise at or after x.
        let succ_of = |x: u128| -> (Id, Addr) {
            let pos = sorted.partition_point(|(id, _)| id.0 < x);
            sorted[pos % n]
        };

        let mut nodes: Vec<Option<ChordNode>> = (0..n).map(|_| None).collect();
        for &(id, addr) in &sorted {
            let successor = succ_of(id.0.wrapping_add(1));
            let mut fingers = Vec::with_capacity(M_BITS);
            let mut last: Option<Addr> = None;
            for i in 0..M_BITS {
                let target = id.0.wrapping_add(1u128 << i);
                let f = succ_of(target);
                if f.1 == addr {
                    continue;
                }
                if last != Some(f.1) {
                    fingers.push(f);
                    last = Some(f.1);
                }
            }
            nodes[addr] = Some(ChordNode {
                id,
                fingers,
                successor,
            });
        }
        let nodes: Vec<ChordNode> = nodes.into_iter().map(|o| o.expect("filled")).collect();
        ChordSim {
            engine: Engine::new(topo, nodes, seed),
        }
    }

    /// Starts a lookup for `key` from node `from`.
    pub fn lookup(&mut self, from: Addr, key: Id) {
        self.engine.inject(
            from,
            from,
            ChordMsg::Lookup(ChordLookup {
                key,
                origin: from,
                hops: 0,
                path_us: 0,
                terminal: false,
            }),
            0,
        );
    }

    /// Runs to quiescence and returns deliveries.
    pub fn drain(&mut self) -> Vec<ChordDelivery> {
        self.engine.run_until_quiet(10_000_000);
        self.engine
            .drain_outputs()
            .into_iter()
            .map(|(_, _, d)| d)
            .collect()
    }

    /// Ground truth: the node responsible for `key` (its successor).
    pub fn true_successor(&self, key: &Id) -> Addr {
        (0..self.engine.len())
            .min_by_key(|&a| {
                let id = self.engine.node(a).id;
                // succ(key): smallest cw distance from key to node.
                key.cw_dist(&id)
            })
            .expect("non-empty ring")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use past_crypto::rng::Rng;
    use past_netsim::Sphere;
    use past_pastry::random_ids;

    fn build(n: usize, seed: u64) -> ChordSim<Sphere> {
        let mut rng = Rng::seed_from_u64(seed);
        let ids = random_ids(n, &mut rng);
        ChordSim::build(Sphere::new(n, seed), seed, &ids)
    }

    #[test]
    fn lookups_reach_the_successor() {
        let mut sim = build(100, 1);
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..100 {
            let key = Id(rng.random());
            let from = rng.random_range(0..100);
            sim.lookup(from, key);
            let recs = sim.drain();
            assert_eq!(recs.len(), 1);
            assert_eq!(
                recs[0].delivered_at,
                sim.true_successor(&key),
                "lookup must land on succ(key)"
            );
        }
    }

    #[test]
    fn hops_scale_as_half_log2_n() {
        let mut sim = build(1024, 2);
        let mut rng = Rng::seed_from_u64(8);
        let mut hops = 0u64;
        let trials = 400;
        for _ in 0..trials {
            let key = Id(rng.random());
            let from = rng.random_range(0..1024);
            sim.lookup(from, key);
            hops += sim.drain()[0].hops as u64;
        }
        let avg = hops as f64 / trials as f64;
        // Chord's classic result: ~0.5 * log2(N) = 5 for N = 1024.
        assert!((3.0..7.5).contains(&avg), "avg hops {avg} out of range");
    }

    #[test]
    fn self_lookup_zero_hops() {
        let mut sim = build(50, 3);
        let key = sim.engine.node(7).id;
        sim.lookup(7, key);
        let recs = sim.drain();
        assert_eq!(recs[0].delivered_at, 7);
        assert_eq!(recs[0].hops, 0);
    }

    #[test]
    fn single_node_ring() {
        let mut sim = build(1, 4);
        sim.lookup(0, Id(12345));
        let recs = sim.drain();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].delivered_at, 0);
    }
}
