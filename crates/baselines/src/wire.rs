//! Byte-level codec for the baseline overlays (DESIGN.md §13.4).
//!
//! Chord and CAN carry a single lookup message each; both frames lead
//! `[version:1][kind:1]` like the Pastry codec so a mislabeled frame
//! fails with a typed error rather than a misparse. Integers are
//! little-endian; the CAN target point is a `u32` length-prefixed
//! vector of `f64` coordinates (the dimension is a per-experiment
//! constant, but the frame stays self-describing).

use crate::can::{CanLookup, CanMsg};
use crate::chord::{ChordLookup, ChordMsg};
use past_pastry::Id;
use past_wire::{
    get_bool, get_u32, get_u64, get_vec, put_bool, put_u32, put_u64, put_u8, put_vec, tail,
    DecodeError, Wire, WIRE_VERSION,
};

/// `[version:1][kind:1]`, shared by both baseline frames.
const HEADER: u64 = 2;

fn check_header(buf: &[u8], pos: &mut usize) -> Result<(), DecodeError> {
    let version = past_wire::get_u8(buf, pos)?;
    if version != WIRE_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    match past_wire::get_u8(buf, pos)? {
        0 => Ok(()),
        kind => Err(DecodeError::UnknownKind(kind)),
    }
}

impl Wire for ChordMsg {
    const MIN_WIRE_LEN: usize = 2;

    fn encode(&self, out: &mut Vec<u8>) {
        put_u8(out, WIRE_VERSION);
        let ChordMsg::Lookup(lk) = self;
        put_u8(out, 0);
        lk.key.encode(out);
        put_u64(out, lk.origin as u64);
        put_u32(out, lk.hops);
        put_u64(out, lk.path_us);
        put_bool(out, lk.terminal);
    }

    fn decode(buf: &[u8]) -> Result<(ChordMsg, usize), DecodeError> {
        let mut pos = 0;
        check_header(buf, &mut pos)?;
        let (key, used) = Id::decode(tail(buf, pos))?;
        pos += used;
        let origin = get_u64(buf, &mut pos)? as usize;
        let hops = get_u32(buf, &mut pos)?;
        let path_us = get_u64(buf, &mut pos)?;
        let terminal = get_bool(buf, &mut pos)?;
        Ok((
            ChordMsg::Lookup(ChordLookup {
                key,
                origin,
                hops,
                path_us,
                terminal,
            }),
            pos,
        ))
    }

    fn encoded_len(&self) -> u64 {
        // key(16) origin(8) hops(4) path_us(8) terminal(1)
        let ChordMsg::Lookup(_) = self;
        HEADER + 37
    }
}

impl Wire for CanMsg {
    const MIN_WIRE_LEN: usize = 2;

    fn encode(&self, out: &mut Vec<u8>) {
        put_u8(out, WIRE_VERSION);
        let CanMsg::Lookup(lk) = self;
        put_u8(out, 0);
        put_vec(out, &lk.target);
        put_u64(out, lk.origin as u64);
        put_u32(out, lk.hops);
        put_u64(out, lk.path_us);
    }

    fn decode(buf: &[u8]) -> Result<(CanMsg, usize), DecodeError> {
        let mut pos = 0;
        check_header(buf, &mut pos)?;
        let target = get_vec(buf, &mut pos)?;
        let origin = get_u64(buf, &mut pos)? as usize;
        let hops = get_u32(buf, &mut pos)?;
        let path_us = get_u64(buf, &mut pos)?;
        Ok((
            CanMsg::Lookup(CanLookup {
                target,
                origin,
                hops,
                path_us,
            }),
            pos,
        ))
    }

    fn encoded_len(&self) -> u64 {
        // target(4 + 8d) origin(8) hops(4) path_us(8)
        let CanMsg::Lookup(lk) = self;
        HEADER + 4 + 8 * lk.target.len() as u64 + 20
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_frames_have_versioned_headers() {
        let msg = ChordMsg::Lookup(ChordLookup {
            key: Id(42),
            origin: 7,
            hops: 3,
            path_us: 99,
            terminal: false,
        });
        let bytes = msg.to_wire();
        assert_eq!(bytes.len() as u64, msg.encoded_len());
        assert_eq!(bytes[0], WIRE_VERSION);
        assert_eq!(
            ChordMsg::decode(&[WIRE_VERSION, 9]).unwrap_err(),
            DecodeError::UnknownKind(9)
        );
        assert_eq!(
            CanMsg::decode(&[0xff, 0]).unwrap_err(),
            DecodeError::BadVersion(0xff)
        );
    }
}
