//! Deterministic, seedable pseudo-random number generation.
//!
//! The whole workspace draws randomness from this module and nowhere
//! else: no OS entropy, no `rand` crate, no global state. Every
//! simulation, test, and workload generator threads an explicit [`Rng`]
//! seeded from a `u64`, so any run is exactly reproducible from its seed
//! — the property the `xtask check` determinism rules (D2) enforce
//! mechanically.
//!
//! The generator is xoshiro256** (Blackman & Vigna), a small, fast,
//! well-studied non-cryptographic PRNG with a 2^256 − 1 period. Seeds are
//! expanded with SplitMix64 so that nearby `u64` seeds produce unrelated
//! streams. None of this is cryptographic; key material comes from
//! [`crate::schnorr`], not from here.

/// The workspace PRNG: xoshiro256** seeded via SplitMix64.
///
/// The API mirrors the subset of the `rand` crate the codebase used
/// before the hermeticity refactor (`random`, `random_range`,
/// `random_bool`), plus `shuffle`, `choose` and `fill_bytes` helpers.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step: the standard seed-expansion generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Creates a generator from 32 bytes of seed material.
    ///
    /// The bytes are folded through SplitMix64 so an all-zero (or
    /// otherwise degenerate) seed still yields a usable state.
    pub fn from_seed(seed: [u8; 32]) -> Rng {
        let mut sm = 0xa076_1d64_78bd_642fu64;
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            sm ^= u64::from_le_bytes(chunk);
            *word = splitmix64(&mut sm);
        }
        Rng { s }
    }

    /// The next raw 64-bit output (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// The next raw 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// The next raw 128-bit output.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// A uniform value of any [`FromRng`] type (integers, `bool`, floats).
    pub fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform value in `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.random_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.random_range(0..slice.len())])
        }
    }

    /// Fills `dst` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, dst: &mut [u8]) {
        for chunk in dst.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// An independent generator split off from this one (for sub-streams
    /// that must not perturb the parent's sequence length).
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }

    /// Uniform in `[0, span)` by rejection sampling (no modulo bias).
    fn below_u64(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        // Reject the low values that would wrap unevenly: the classic
        // arc4random_uniform threshold, `2^64 mod span`.
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            if x >= threshold {
                return x % span;
            }
        }
    }

    /// Uniform in `[0, span)` for 128-bit spans.
    fn below_u128(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        if let Ok(small) = u64::try_from(span) {
            return u128::from(self.below_u64(small));
        }
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = self.next_u128();
            if x >= threshold {
                return x % span;
            }
        }
    }
}

/// Types a [`Rng`] can produce uniformly over their whole domain
/// (floats: uniform in `[0, 1)`).
pub trait FromRng {
    /// Draws one value from `rng`.
    fn from_rng(rng: &mut Rng) -> Self;
}

macro_rules! impl_from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for u128 {
    fn from_rng(rng: &mut Rng) -> u128 {
        rng.next_u128()
    }
}

impl FromRng for i128 {
    fn from_rng(rng: &mut Rng) -> i128 {
        rng.next_u128() as i128
    }
}

impl FromRng for bool {
    fn from_rng(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng(rng: &mut Rng) -> f64 {
        rng.unit_f64()
    }
}

impl FromRng for f32 {
    fn from_rng(rng: &mut Rng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a [`Rng`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $via:ident : $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                self.start.wrapping_add(rng.$via(span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as $wide)
                    .wrapping_sub(lo as $wide)
                    .wrapping_add(1);
                if span == 0 {
                    // Full-domain inclusive range.
                    return rng.random::<$t>();
                }
                lo.wrapping_add(rng.$via(span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => below_u64 : u64,
    u16 => below_u64 : u64,
    u32 => below_u64 : u64,
    u64 => below_u64 : u64,
    usize => below_u64 : u64,
    i32 => below_u64 : u64,
    i64 => below_u64 : u64,
    u128 => below_u128 : u128,
    i128 => below_u128 : u128
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let x = self.start + rng.unit_f64() * (self.end - self.start);
        // Floating rounding can land exactly on `end`; nudge back inside.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn from_seed_tolerates_zero_bytes() {
        let mut z = Rng::from_seed([0u8; 32]);
        let first = z.next_u64();
        assert_ne!(first, 0);
        assert_ne!(first, z.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u128 = rng.random_range(0..1024);
            assert!(y < 1024);
            let z: usize = rng.random_range(0..=5);
            assert!(z <= 5);
            let f: f64 = rng.random_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let g: f64 = rng.random_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn unit_f64_is_uniformish() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.unit_f64()).sum::<f64>() / n as f64;
        assert!((0.49..0.51).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((29_000..31_000).contains(&hits), "hits = {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not stay sorted");
    }

    #[test]
    fn fill_bytes_fills_every_byte() {
        let mut rng = Rng::seed_from_u64(19);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut buf2 = [0u8; 37];
        Rng::seed_from_u64(19).fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn choose_and_fork() {
        let mut rng = Rng::seed_from_u64(23);
        assert!(rng.choose::<u8>(&[]).is_none());
        let xs = [1, 2, 3];
        assert!(xs.contains(rng.choose(&xs).unwrap()));
        let mut f1 = rng.fork();
        let mut f2 = rng.fork();
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn full_domain_inclusive_range() {
        let mut rng = Rng::seed_from_u64(29);
        // Must not panic or loop forever.
        let _: u64 = rng.random_range(0..=u64::MAX);
        let _: u8 = rng.random_range(0..=u8::MAX);
    }
}
