//! From-scratch cryptographic substrate for the PAST reproduction.
//!
//! The PAST paper (Druschel & Rowstron, HotOS 2001) assumes "it is
//! computationally infeasible to break the public-key cryptosystem and the
//! cryptographic hash function used in PAST" without naming either. This
//! crate supplies both, implemented from first principles so the repository
//! has no external cryptography dependencies:
//!
//! - [`sha256`] / [`sha1`]: FIPS 180-4 / RFC 3174 hash functions. SHA-256
//!   derives 128-bit nodeIds from public keys and content hashes; SHA-1
//!   produces the 160-bit fileIds the paper specifies.
//! - [`u256`] / [`modmath`]: fixed-width big-integer and modular arithmetic.
//! - [`schnorr`]: Schnorr signatures over a baked-in 256-bit safe-prime
//!   group, with deterministic nonces so simulations are reproducible.
//! - [`digest`]: digest newtypes shared by the higher layers.
//! - [`rng`]: the deterministic, seedable PRNG every other crate draws
//!   randomness from (no OS entropy anywhere in the workspace).
//!
//! Security disclaimer: parameters are sized for a research reproduction
//! (256-bit discrete log, SHA-1 identifiers) and must not be used to protect
//! real data.

pub mod digest;
pub mod modmath;
pub mod rng;
pub mod schnorr;
pub mod sha1;
pub mod sha256;
pub mod stream;
pub mod u256;

pub use digest::{Digest160, Digest256};
pub use rng::Rng;
pub use schnorr::{KeyPair, PublicKey, Signature};
pub use stream::StreamCipher;

/// Convenience: SHA-256 digest of `data` as a [`Digest256`].
pub fn digest256(data: &[u8]) -> Digest256 {
    Digest256(sha256::sha256(data))
}

/// Convenience: SHA-1 digest of `data` as a [`Digest160`].
pub fn digest160(data: &[u8]) -> Digest160 {
    Digest160(sha1::sha1(data))
}
