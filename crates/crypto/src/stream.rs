//! Client-side stream encryption.
//!
//! The paper leaves data privacy to the client: "users may use encryption
//! to protect the privacy of their data, using a cryptosystem of their
//! choice. Data encryption does not involve the smartcards." This module
//! provides that client-chosen cryptosystem for the examples: a stream
//! cipher built from SHA-256 in counter mode (CTR). Keystream block `i` is
//! `SHA-256(key ‖ nonce ‖ i)`; encryption and decryption are the same XOR
//! operation.

use crate::sha256::Sha256;

/// A SHA-256-CTR stream cipher instance.
pub struct StreamCipher {
    key: [u8; 32],
    nonce: u64,
}

impl StreamCipher {
    /// Creates a cipher from a key and a per-file nonce.
    ///
    /// Never reuse a (key, nonce) pair across different plaintexts.
    pub fn new(key: [u8; 32], nonce: u64) -> StreamCipher {
        StreamCipher { key, nonce }
    }

    /// Derives a cipher from a passphrase.
    pub fn from_passphrase(pass: &str, nonce: u64) -> StreamCipher {
        let mut h = Sha256::new();
        h.update(b"past-stream-key-v1");
        h.update(pass.as_bytes());
        StreamCipher::new(h.finalize(), nonce)
    }

    fn keystream_block(&self, counter: u64) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(b"past-stream-ctr-v1");
        h.update(&self.key);
        h.update(&self.nonce.to_be_bytes());
        h.update(&counter.to_be_bytes());
        h.finalize()
    }

    /// Encrypts or decrypts `data` in place (XOR is its own inverse).
    pub fn apply(&self, data: &mut [u8]) {
        for (i, chunk) in data.chunks_mut(32).enumerate() {
            let ks = self.keystream_block(i as u64);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }

    /// Convenience: returns an encrypted/decrypted copy.
    pub fn transform(&self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let c = StreamCipher::from_passphrase("hunter2", 7);
        let plain = b"the archive contents".to_vec();
        let enc = c.transform(&plain);
        assert_ne!(enc, plain);
        assert_eq!(c.transform(&enc), plain);
    }

    #[test]
    fn different_nonces_differ() {
        let a = StreamCipher::from_passphrase("p", 1).transform(b"same plaintext");
        let b = StreamCipher::from_passphrase("p", 2).transform(b"same plaintext");
        assert_ne!(a, b);
    }

    #[test]
    fn different_keys_differ() {
        let a = StreamCipher::from_passphrase("p1", 1).transform(b"same plaintext");
        let b = StreamCipher::from_passphrase("p2", 1).transform(b"same plaintext");
        assert_ne!(a, b);
    }

    #[test]
    fn wrong_key_garbles() {
        let enc = StreamCipher::from_passphrase("right", 1).transform(b"secret");
        let dec = StreamCipher::from_passphrase("wrong", 1).transform(&enc);
        assert_ne!(dec, b"secret".to_vec());
    }

    #[test]
    fn long_data_multi_block() {
        let c = StreamCipher::new([7u8; 32], 9);
        let plain: Vec<u8> = (0..1000u16).map(|i| i as u8).collect();
        let enc = c.transform(&plain);
        assert_eq!(c.transform(&enc), plain);
        // Blocks must not repeat (counter advances).
        assert_ne!(&enc[..32], &enc[32..64]);
    }

    #[test]
    fn empty_data_ok() {
        let c = StreamCipher::new([0u8; 32], 0);
        assert!(c.transform(&[]).is_empty());
    }
}
