//! Modular arithmetic over 256-bit moduli.
//!
//! The reduction routine is a bit-serial long division: slow compared to
//! Montgomery multiplication but simple, allocation-free and obviously
//! correct, which matters more here — signatures are issued at simulation
//! time, not on a hot path.

use crate::u256::{U256, U512};

/// Reduces a 512-bit value modulo a non-zero 256-bit modulus.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn rem512(x: &U512, m: &U256) -> U256 {
    assert!(!m.is_zero(), "division by zero modulus");
    let mut r = U256::ZERO;
    let top = x.bits();
    for i in (0..top).rev() {
        let (shifted, carry) = r.shl1();
        r = shifted;
        if x.bit(i) {
            r.0[0] |= 1;
        }
        // Invariant: before the shift r < m, so the true value 2r+bit < 2m;
        // at most one subtraction restores r < m. If the shift carried out of
        // 256 bits the true value exceeds 2^256 > m, so subtract (the wrapped
        // result is exact because 2r + bit - m < m <= 2^256).
        if carry || r >= *m {
            let (d, _) = r.overflowing_sub(m);
            r = d;
        }
    }
    r
}

/// Reduces a 256-bit value modulo `m`.
pub fn rem256(x: &U256, m: &U256) -> U256 {
    rem512(&U512::from_u256(x), m)
}

/// Computes `(a + b) mod m` for `a, b < m`.
pub fn addmod(a: &U256, b: &U256, m: &U256) -> U256 {
    debug_assert!(a < m && b < m);
    let (s, carry) = a.overflowing_add(b);
    if carry || s >= *m {
        let (d, _) = s.overflowing_sub(m);
        d
    } else {
        s
    }
}

/// Computes `(a - b) mod m` for `a, b < m`.
pub fn submod(a: &U256, b: &U256, m: &U256) -> U256 {
    debug_assert!(a < m && b < m);
    if a >= b {
        a.overflowing_sub(b).0
    } else {
        let (gap, _) = m.overflowing_sub(b);
        a.overflowing_add(&gap).0
    }
}

/// Computes `(a * b) mod m` for `a, b < m`.
pub fn mulmod(a: &U256, b: &U256, m: &U256) -> U256 {
    rem512(&a.widening_mul(b), m)
}

/// Computes `base^exp mod m` by square-and-multiply.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn powmod(base: &U256, exp: &U256, m: &U256) -> U256 {
    assert!(!m.is_zero(), "zero modulus");
    if *m == U256::ONE {
        return U256::ZERO;
    }
    let mut result = U256::ONE;
    let mut b = rem256(base, m);
    let top = exp.bits();
    for i in 0..top {
        if exp.bit(i) {
            result = mulmod(&result, &b, m);
        }
        if i + 1 < top {
            b = mulmod(&b, &b, m);
        }
    }
    result
}

/// Computes the inverse of `a` modulo a prime `p` via Fermat's little
/// theorem (`a^(p-2) mod p`).
///
/// Returns `None` if `a ≡ 0 (mod p)`.
pub fn invmod_prime(a: &U256, p: &U256) -> Option<U256> {
    let a = rem256(a, p);
    if a.is_zero() {
        return None;
    }
    let two = U256::from_u64(2);
    let (pm2, _) = p.overflowing_sub(&two);
    Some(powmod(&a, &pm2, p))
}

/// Miller–Rabin primality test with the given number of random-ish fixed
/// bases derived from small primes.
///
/// Deterministically correct for the sizes we care about with overwhelming
/// probability; used in tests to validate the baked-in group parameters.
pub fn is_probable_prime(n: &U256) -> bool {
    if *n < U256::from_u64(2) {
        return false;
    }
    const SMALL: [u64; 15] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47];
    for &p in &SMALL {
        let pv = U256::from_u64(p);
        if *n == pv {
            return true;
        }
        if rem256(n, &pv).is_zero() {
            return false;
        }
    }
    // Write n - 1 = d * 2^r.
    let (nm1, _) = n.overflowing_sub(&U256::ONE);
    let mut d = nm1;
    let mut r = 0u32;
    while d.is_even() {
        d = d.shr1();
        r += 1;
    }
    'base: for &a in &SMALL {
        let a = U256::from_u64(a);
        let mut x = powmod(&a, &d, n);
        if x == U256::ONE || x == nm1 {
            continue;
        }
        for _ in 0..r.saturating_sub(1) {
            x = mulmod(&x, &x, n);
            if x == nm1 {
                continue 'base;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::u256::U256;

    fn u(v: u64) -> U256 {
        U256::from_u64(v)
    }

    #[test]
    fn rem512_small_values() {
        let x = U512::from_u256(&u(100));
        assert_eq!(rem512(&x, &u(7)), u(2));
        assert_eq!(rem512(&x, &u(100)), u(0));
        assert_eq!(rem512(&x, &u(101)), u(100));
    }

    #[test]
    fn rem512_wide_product() {
        // (2^64)^2 mod 1000000007 computed independently: 2^128 mod 1e9+7.
        let x = u(0).widening_mul(&u(0));
        assert_eq!(rem512(&x, &u(97)), u(0));
        let big = U256([0, 1, 0, 0]); // 2^64
        let sq = big.widening_mul(&big); // 2^128
                                         // 2^128 mod 1000000007 = 294967268... compute via repeated powmod instead.
        let expect = powmod(&u(2), &u(128), &u(1_000_000_007));
        assert_eq!(rem512(&sq, &u(1_000_000_007)), expect);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn rem512_zero_modulus_panics() {
        rem512(&U512::from_u256(&u(1)), &U256::ZERO);
    }

    #[test]
    fn addmod_wraps() {
        let m = u(13);
        assert_eq!(addmod(&u(7), &u(9), &m), u(3));
        assert_eq!(addmod(&u(0), &u(0), &m), u(0));
        assert_eq!(addmod(&u(12), &u(12), &m), u(11));
    }

    #[test]
    fn addmod_near_2_256() {
        // Modulus close to 2^256 exercises the carry path.
        let (m, _) = U256::MAX.overflowing_sub(&u(188)); // 2^256 - 189 (prime-ish, irrelevant)
        let (a, _) = m.overflowing_sub(&u(1));
        let (b, _) = m.overflowing_sub(&u(2));
        // (m-1 + m-2) mod m = m - 3.
        let (want, _) = m.overflowing_sub(&u(3));
        assert_eq!(addmod(&a, &b, &m), want);
    }

    #[test]
    fn submod_wraps() {
        let m = u(13);
        assert_eq!(submod(&u(3), &u(8), &m), u(8));
        assert_eq!(submod(&u(8), &u(3), &m), u(5));
        assert_eq!(submod(&u(5), &u(5), &m), u(0));
    }

    #[test]
    fn mulmod_matches_u128() {
        let m = u(1_000_000_007);
        for (a, b) in [(123456789u64, 987654321u64), (999999999, 999999998)] {
            let want = ((a as u128 * b as u128) % 1_000_000_007) as u64;
            assert_eq!(mulmod(&u(a), &u(b), &m), u(want));
        }
    }

    #[test]
    fn powmod_matches_reference() {
        assert_eq!(powmod(&u(2), &u(10), &u(1_000_000)), u(1024));
        assert_eq!(powmod(&u(3), &u(0), &u(7)), u(1));
        assert_eq!(powmod(&u(0), &u(5), &u(7)), u(0));
        // Fermat: a^(p-1) = 1 mod p.
        assert_eq!(powmod(&u(5), &u(1_000_000_006), &u(1_000_000_007)), u(1));
    }

    #[test]
    fn powmod_modulus_one() {
        assert_eq!(powmod(&u(5), &u(3), &U256::ONE), U256::ZERO);
    }

    #[test]
    fn invmod_works() {
        let p = u(1_000_000_007);
        let a = u(123456789);
        let inv = invmod_prime(&a, &p).unwrap();
        assert_eq!(mulmod(&a, &inv, &p), U256::ONE);
        assert!(invmod_prime(&U256::ZERO, &p).is_none());
    }

    #[test]
    fn primality_small() {
        assert!(is_probable_prime(&u(2)));
        assert!(is_probable_prime(&u(3)));
        assert!(!is_probable_prime(&u(1)));
        assert!(!is_probable_prime(&u(0)));
        assert!(is_probable_prime(&u(104729)));
        assert!(!is_probable_prime(&u(104730)));
        // Carmichael number 561 must be rejected.
        assert!(!is_probable_prime(&u(561)));
    }

    #[test]
    fn baked_group_parameters_are_prime() {
        let p = crate::schnorr::group_p();
        let q = crate::schnorr::group_q();
        assert!(is_probable_prime(&p));
        assert!(is_probable_prime(&q));
        // p = 2q + 1 (safe prime).
        let (two_q, c) = q.overflowing_add(&q);
        assert!(!c);
        let (p_minus_1, _) = p.overflowing_sub(&U256::ONE);
        assert_eq!(two_q, p_minus_1);
    }
}
