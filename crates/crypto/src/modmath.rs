//! Modular arithmetic over 256-bit moduli.
//!
//! The reduction routine is word-wise long division (Knuth's Algorithm D
//! over 64-bit limbs): every Schnorr sign/verify performs hundreds of
//! reductions under `powmod`, so the former bit-serial loop (512 shift-
//! subtract rounds) dominated signature cost. The bit-serial version is
//! kept under `#[cfg(test)]` as an independently-derived reference the
//! word-wise code is checked against on randomized inputs.

use crate::u256::{U256, U512};

/// Reduces a 512-bit value modulo a non-zero 256-bit modulus.
///
/// Knuth TAOCP vol. 2, Algorithm 4.3.1 D, remainder only: normalize so
/// the divisor's top limb has its high bit set, then for each quotient
/// position estimate the digit from the top two dividend limbs, refine
/// it with the second divisor limb, and multiply-subtract (with at most
/// one add-back). Single-limb moduli take a plain `u128 %` fast path.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn rem512(x: &U512, m: &U256) -> U256 {
    assert!(!m.is_zero(), "division by zero modulus");
    // `n` = number of significant 64-bit limbs in the modulus.
    let n = 4 - m.0.iter().rev().take_while(|&&l| l == 0).count();
    if n == 1 {
        // One-limb modulus: fold the dividend down with u128 arithmetic.
        let d = m.0[0] as u128;
        let mut r: u128 = 0;
        for i in (0..8).rev() {
            r = ((r << 64) | x.0[i] as u128) % d;
        }
        return U256::from_u64(r as u64);
    }
    // Dividend already below the modulus: nothing to do.
    if x.0[4..].iter().all(|&l| l == 0) {
        let lo = U256([x.0[0], x.0[1], x.0[2], x.0[3]]);
        if lo < *m {
            return lo;
        }
    }
    // Normalize: shift both operands left so v[n-1] has its top bit set.
    // The dividend gains at most 63 bits, caught by a ninth limb.
    let s = m.0[n - 1].leading_zeros();
    let mut v = [0u64; 4];
    let mut u = [0u64; 9];
    if s == 0 {
        v[..n].copy_from_slice(&m.0[..n]);
        u[..8].copy_from_slice(&x.0);
    } else {
        for i in (1..n).rev() {
            v[i] = (m.0[i] << s) | (m.0[i - 1] >> (64 - s));
        }
        v[0] = m.0[0] << s;
        u[8] = x.0[7] >> (64 - s);
        for i in (1..8).rev() {
            u[i] = (x.0[i] << s) | (x.0[i - 1] >> (64 - s));
        }
        u[0] = x.0[0] << s;
    }
    // Main loop: one quotient digit per iteration, most significant first.
    // Only the remainder (left behind in u[0..n]) is kept.
    for j in (0..=8 - n).rev() {
        // Estimate the digit from the top two dividend limbs. Because the
        // running remainder stays below v, qhat <= B + 1 and the refinement
        // loop below runs at most twice (Knuth 4.3.1 Theorem B).
        let top = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
        let mut qhat = top / v[n - 1] as u128;
        let mut rhat = top % v[n - 1] as u128;
        while qhat >> 64 != 0 || qhat * v[n - 2] as u128 > (rhat << 64) | u[j + n - 2] as u128 {
            qhat -= 1;
            rhat += v[n - 1] as u128;
            if rhat >> 64 != 0 {
                break;
            }
        }
        // Multiply-subtract: u[j..=j+n] -= qhat * v[..n], tracking the
        // borrow in `k`. `t` is exact in i128 (|t| < 2^66).
        let mut k: i128 = 0;
        for i in 0..n {
            let p = qhat * v[i] as u128;
            let t = u[i + j] as i128 - k - (p as u64) as i128;
            u[i + j] = t as u64;
            k = (p >> 64) as i128 - (t >> 64);
        }
        let t = u[j + n] as i128 - k;
        u[j + n] = t as u64;
        // The estimate can be one too large; a negative top limb means the
        // subtraction overshot by exactly one v — add it back.
        if t < 0 {
            let mut carry: u128 = 0;
            for i in 0..n {
                let t2 = u[i + j] as u128 + v[i] as u128 + carry;
                u[i + j] = t2 as u64;
                carry = t2 >> 64;
            }
            u[j + n] = (u[j + n] as u128 + carry) as u64;
        }
    }
    // Denormalize the remainder: shift right by `s`.
    let mut r = [0u64; 4];
    if s == 0 {
        r[..n].copy_from_slice(&u[..n]);
    } else {
        for i in 0..n - 1 {
            r[i] = (u[i] >> s) | (u[i + 1] << (64 - s));
        }
        r[n - 1] = u[n - 1] >> s;
    }
    U256(r)
}

/// Reduces a 256-bit value modulo `m`.
pub fn rem256(x: &U256, m: &U256) -> U256 {
    rem512(&U512::from_u256(x), m)
}

/// Computes `(a + b) mod m` for `a, b < m`.
pub fn addmod(a: &U256, b: &U256, m: &U256) -> U256 {
    debug_assert!(a < m && b < m);
    let (s, carry) = a.overflowing_add(b);
    if carry || s >= *m {
        let (d, _) = s.overflowing_sub(m);
        d
    } else {
        s
    }
}

/// Computes `(a - b) mod m` for `a, b < m`.
pub fn submod(a: &U256, b: &U256, m: &U256) -> U256 {
    debug_assert!(a < m && b < m);
    if a >= b {
        a.overflowing_sub(b).0
    } else {
        let (gap, _) = m.overflowing_sub(b);
        a.overflowing_add(&gap).0
    }
}

/// Computes `(a * b) mod m` for `a, b < m`.
pub fn mulmod(a: &U256, b: &U256, m: &U256) -> U256 {
    rem512(&a.widening_mul(b), m)
}

/// Computes `base^exp mod m` by fixed-window (w = 4) square-and-multiply:
/// precompute `base^0..base^15`, then per 4-bit exponent window do four
/// squarings and one table multiply — roughly 64 + 256/4 multiplies for a
/// 256-bit exponent versus ~384 for the bit-at-a-time ladder.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn powmod(base: &U256, exp: &U256, m: &U256) -> U256 {
    assert!(!m.is_zero(), "zero modulus");
    if *m == U256::ONE {
        return U256::ZERO;
    }
    let top = exp.bits();
    if top == 0 {
        return U256::ONE;
    }
    let b = rem256(base, m);
    let mut table = [U256::ONE; 16];
    table[1] = b;
    for i in 2..16 {
        table[i] = mulmod(&table[i - 1], &b, m);
    }
    let windows = top.div_ceil(4);
    let mut result = U256::ONE;
    for w in (0..windows).rev() {
        if w + 1 < windows {
            for _ in 0..4 {
                result = mulmod(&result, &result, m);
            }
        }
        let mut digit = 0usize;
        for bit in (0..4).rev() {
            let i = w * 4 + bit;
            digit <<= 1;
            if i < 256 && exp.bit(i) {
                digit |= 1;
            }
        }
        if digit != 0 {
            result = mulmod(&result, &table[digit], m);
        }
    }
    result
}

/// Computes the inverse of `a` modulo a prime `p` via Fermat's little
/// theorem (`a^(p-2) mod p`).
///
/// Returns `None` if `a ≡ 0 (mod p)`.
pub fn invmod_prime(a: &U256, p: &U256) -> Option<U256> {
    let a = rem256(a, p);
    if a.is_zero() {
        return None;
    }
    let two = U256::from_u64(2);
    let (pm2, _) = p.overflowing_sub(&two);
    Some(powmod(&a, &pm2, p))
}

/// Miller–Rabin primality test with the given number of random-ish fixed
/// bases derived from small primes.
///
/// Deterministically correct for the sizes we care about with overwhelming
/// probability; used in tests to validate the baked-in group parameters.
pub fn is_probable_prime(n: &U256) -> bool {
    if *n < U256::from_u64(2) {
        return false;
    }
    const SMALL: [u64; 15] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47];
    for &p in &SMALL {
        let pv = U256::from_u64(p);
        if *n == pv {
            return true;
        }
        if rem256(n, &pv).is_zero() {
            return false;
        }
    }
    // Write n - 1 = d * 2^r.
    let (nm1, _) = n.overflowing_sub(&U256::ONE);
    let mut d = nm1;
    let mut r = 0u32;
    while d.is_even() {
        d = d.shr1();
        r += 1;
    }
    'base: for &a in &SMALL {
        let a = U256::from_u64(a);
        let mut x = powmod(&a, &d, n);
        if x == U256::ONE || x == nm1 {
            continue;
        }
        for _ in 0..r.saturating_sub(1) {
            x = mulmod(&x, &x, n);
            if x == nm1 {
                continue 'base;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use crate::u256::U256;

    fn u(v: u64) -> U256 {
        U256::from_u64(v)
    }

    /// The original bit-serial shift-subtract reduction, kept as an
    /// independently-derived reference for the word-wise Algorithm D.
    fn rem512_bitserial(x: &U512, m: &U256) -> U256 {
        assert!(!m.is_zero(), "division by zero modulus");
        let mut r = U256::ZERO;
        let top = x.bits();
        for i in (0..top).rev() {
            let (shifted, carry) = r.shl1();
            r = shifted;
            if x.bit(i) {
                r.0[0] |= 1;
            }
            // Before the shift r < m, so the true value 2r+bit < 2m; at most
            // one subtraction restores r < m. A carry out of 256 bits means
            // the true value exceeds 2^256 > m, so subtract (the wrapped
            // result is exact because 2r + bit - m < m <= 2^256).
            if carry || r >= *m {
                let (d, _) = r.overflowing_sub(m);
                r = d;
            }
        }
        r
    }

    #[test]
    fn rem512_matches_bitserial_on_random_inputs() {
        let mut rng = Rng::seed_from_u64(0x5eed_d1f);
        for round in 0..2_000 {
            let x = U512(std::array::from_fn(|_| rng.next_u64()));
            // Sweep modulus widths so every limb count (and its qhat
            // refinement path) is exercised.
            let mut m = U256(std::array::from_fn(|_| rng.next_u64()));
            let limbs = round % 4;
            for l in m.0.iter_mut().skip(limbs + 1) {
                *l = 0;
            }
            if m.is_zero() {
                m = U256::ONE;
            }
            assert_eq!(rem512(&x, &m), rem512_bitserial(&x, &m), "x={x:?} m={m:?}");
        }
    }

    #[test]
    fn rem512_edge_moduli() {
        let mut rng = Rng::seed_from_u64(7);
        let xs: Vec<U512> = (0..8)
            .map(|_| U512(std::array::from_fn(|_| rng.next_u64())))
            .chain([U512([0; 8]), U512([u64::MAX; 8])])
            .collect();
        let mut ms = vec![
            U256::ONE,
            u(2),
            u(u64::MAX),
            U256([0, 1, 0, 0]),                      // 2^64
            U256([1, 1, 0, 0]),                      // 2^64 + 1
            U256([0, 0, 0, 1 << 63]),                // 2^255 (already normalized)
            U256([u64::MAX, u64::MAX, u64::MAX, 1]), // forces add-back paths
            U256::MAX,
            crate::schnorr::group_p(),
        ];
        ms.push(crate::schnorr::group_q());
        for x in &xs {
            for m in &ms {
                assert_eq!(rem512(x, m), rem512_bitserial(x, m), "m={m:?}");
            }
        }
    }

    #[test]
    fn powmod_matches_bit_ladder_on_random_inputs() {
        // Reference: the simple LSB-first square-and-multiply the windowed
        // version replaced.
        fn powmod_ladder(base: &U256, exp: &U256, m: &U256) -> U256 {
            let mut result = U256::ONE;
            let mut b = rem256(base, m);
            for i in 0..exp.bits() {
                if exp.bit(i) {
                    result = mulmod(&result, &b, m);
                }
                b = mulmod(&b, &b, m);
            }
            result
        }
        let mut rng = Rng::seed_from_u64(0xe4_9a11);
        let p = crate::schnorr::group_p();
        for _ in 0..40 {
            let b = U256(std::array::from_fn(|_| rng.next_u64()));
            let e = U256(std::array::from_fn(|_| rng.next_u64()));
            assert_eq!(powmod(&b, &e, &p), powmod_ladder(&b, &e, &p));
        }
        // Short exponents hit the partial top window.
        for e in [0u64, 1, 2, 3, 15, 16, 17, 255, 256, 257] {
            let b = u(0xabcdef);
            assert_eq!(powmod(&b, &u(e), &p), powmod_ladder(&b, &u(e), &p));
        }
    }

    #[test]
    fn rem512_small_values() {
        let x = U512::from_u256(&u(100));
        assert_eq!(rem512(&x, &u(7)), u(2));
        assert_eq!(rem512(&x, &u(100)), u(0));
        assert_eq!(rem512(&x, &u(101)), u(100));
    }

    #[test]
    fn rem512_wide_product() {
        // (2^64)^2 mod 1000000007 computed independently: 2^128 mod 1e9+7.
        let x = u(0).widening_mul(&u(0));
        assert_eq!(rem512(&x, &u(97)), u(0));
        let big = U256([0, 1, 0, 0]); // 2^64
        let sq = big.widening_mul(&big); // 2^128
                                         // 2^128 mod 1000000007 = 294967268... compute via repeated powmod instead.
        let expect = powmod(&u(2), &u(128), &u(1_000_000_007));
        assert_eq!(rem512(&sq, &u(1_000_000_007)), expect);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn rem512_zero_modulus_panics() {
        rem512(&U512::from_u256(&u(1)), &U256::ZERO);
    }

    #[test]
    fn addmod_wraps() {
        let m = u(13);
        assert_eq!(addmod(&u(7), &u(9), &m), u(3));
        assert_eq!(addmod(&u(0), &u(0), &m), u(0));
        assert_eq!(addmod(&u(12), &u(12), &m), u(11));
    }

    #[test]
    fn addmod_near_2_256() {
        // Modulus close to 2^256 exercises the carry path.
        let (m, _) = U256::MAX.overflowing_sub(&u(188)); // 2^256 - 189 (prime-ish, irrelevant)
        let (a, _) = m.overflowing_sub(&u(1));
        let (b, _) = m.overflowing_sub(&u(2));
        // (m-1 + m-2) mod m = m - 3.
        let (want, _) = m.overflowing_sub(&u(3));
        assert_eq!(addmod(&a, &b, &m), want);
    }

    #[test]
    fn submod_wraps() {
        let m = u(13);
        assert_eq!(submod(&u(3), &u(8), &m), u(8));
        assert_eq!(submod(&u(8), &u(3), &m), u(5));
        assert_eq!(submod(&u(5), &u(5), &m), u(0));
    }

    #[test]
    fn mulmod_matches_u128() {
        let m = u(1_000_000_007);
        for (a, b) in [(123456789u64, 987654321u64), (999999999, 999999998)] {
            let want = ((a as u128 * b as u128) % 1_000_000_007) as u64;
            assert_eq!(mulmod(&u(a), &u(b), &m), u(want));
        }
    }

    #[test]
    fn powmod_matches_reference() {
        assert_eq!(powmod(&u(2), &u(10), &u(1_000_000)), u(1024));
        assert_eq!(powmod(&u(3), &u(0), &u(7)), u(1));
        assert_eq!(powmod(&u(0), &u(5), &u(7)), u(0));
        // Fermat: a^(p-1) = 1 mod p.
        assert_eq!(powmod(&u(5), &u(1_000_000_006), &u(1_000_000_007)), u(1));
    }

    #[test]
    fn powmod_modulus_one() {
        assert_eq!(powmod(&u(5), &u(3), &U256::ONE), U256::ZERO);
    }

    #[test]
    fn invmod_works() {
        let p = u(1_000_000_007);
        let a = u(123456789);
        let inv = invmod_prime(&a, &p).unwrap();
        assert_eq!(mulmod(&a, &inv, &p), U256::ONE);
        assert!(invmod_prime(&U256::ZERO, &p).is_none());
    }

    #[test]
    fn primality_small() {
        assert!(is_probable_prime(&u(2)));
        assert!(is_probable_prime(&u(3)));
        assert!(!is_probable_prime(&u(1)));
        assert!(!is_probable_prime(&u(0)));
        assert!(is_probable_prime(&u(104729)));
        assert!(!is_probable_prime(&u(104730)));
        // Carmichael number 561 must be rejected.
        assert!(!is_probable_prime(&u(561)));
    }

    #[test]
    fn baked_group_parameters_are_prime() {
        let p = crate::schnorr::group_p();
        let q = crate::schnorr::group_q();
        assert!(is_probable_prime(&p));
        assert!(is_probable_prime(&q));
        // p = 2q + 1 (safe prime).
        let (two_q, c) = q.overflowing_add(&q);
        assert!(!c);
        let (p_minus_1, _) = p.overflowing_sub(&U256::ONE);
        assert_eq!(two_q, p_minus_1);
    }
}
