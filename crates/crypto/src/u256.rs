//! Fixed-width 256-bit and 512-bit unsigned integers.
//!
//! These are the arithmetic substrate for the Schnorr signature scheme in
//! [`crate::schnorr`]. Only the operations needed by modular arithmetic are
//! provided: wrapping add/sub with carry/borrow reporting, full 256×256→512
//! multiplication, shifts, comparison and byte/hex conversions. All
//! operations are constant-size loops over the limbs (no heap allocation).

use std::cmp::Ordering;
use std::fmt;

/// A 256-bit unsigned integer stored as four little-endian `u64` limbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

/// A 512-bit unsigned integer stored as eight little-endian `u64` limbs.
///
/// Produced by [`U256::widening_mul`] and consumed by the modular reduction
/// in [`crate::modmath`].
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct U512(pub [u64; 8]);

impl U256 {
    /// The additive identity.
    pub const ZERO: U256 = U256([0; 4]);
    /// The multiplicative identity.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The largest representable value, `2^256 - 1`.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Creates a value from a single `u64`.
    pub const fn from_u64(v: u64) -> U256 {
        U256([v, 0, 0, 0])
    }

    /// Returns true if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Returns true if the value is even.
    pub fn is_even(&self) -> bool {
        self.0[0] & 1 == 0
    }

    /// Returns bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < 256, "bit index out of range");
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Returns the number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        for limb in (0..4).rev() {
            if self.0[limb] != 0 {
                return limb * 64 + (64 - self.0[limb].leading_zeros() as usize);
            }
        }
        0
    }

    /// Wrapping addition, returning `(sum mod 2^256, carry_out)`.
    pub fn overflowing_add(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for i in 0..4 {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        (U256(out), carry != 0)
    }

    /// Wrapping subtraction, returning `(diff mod 2^256, borrow_out)`.
    pub fn overflowing_sub(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        for i in 0..4 {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        (U256(out), borrow != 0)
    }

    /// Full 256×256→512-bit schoolbook multiplication.
    pub fn widening_mul(&self, rhs: &U256) -> U512 {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let t = out[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            out[i + 4] = carry as u64;
        }
        U512(out)
    }

    /// Shifts left by one bit, returning `(value << 1 mod 2^256, carry_out)`.
    pub fn shl1(&self) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for i in 0..4 {
            out[i] = (self.0[i] << 1) | carry;
            carry = self.0[i] >> 63;
        }
        (U256(out), carry != 0)
    }

    /// Shifts right by one bit.
    pub fn shr1(&self) -> U256 {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for i in (0..4).rev() {
            out[i] = (self.0[i] >> 1) | (carry << 63);
            carry = self.0[i] & 1;
        }
        U256(out)
    }

    /// Parses a big-endian 32-byte array.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> U256 {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[(3 - i) * 8..(4 - i) * 8]);
            *limb = u64::from_be_bytes(chunk);
        }
        U256(limbs)
    }

    /// Serializes to a big-endian 32-byte array.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[(3 - i) * 8..(4 - i) * 8].copy_from_slice(&self.0[i].to_be_bytes());
        }
        out
    }

    /// Parses a hexadecimal string (no `0x` prefix, up to 64 digits).
    ///
    /// Returns `None` on invalid characters or overly long input.
    pub fn from_hex(s: &str) -> Option<U256> {
        if s.is_empty() || s.len() > 64 {
            return None;
        }
        let mut bytes = [0u8; 32];
        // Left-pad odd-length strings with an implicit zero nibble.
        let padded: String = if s.len() % 2 == 1 {
            format!("0{s}")
        } else {
            s.to_string()
        };
        let off = 32 - padded.len() / 2;
        for (i, pair) in padded.as_bytes().chunks(2).enumerate() {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            bytes[off + i] = ((hi << 4) | lo) as u8;
        }
        Some(U256::from_be_bytes(&bytes))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "U256(0x{:016x}{:016x}{:016x}{:016x})",
            self.0[3], self.0[2], self.0[1], self.0[0]
        )
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:016x}{:016x}{:016x}{:016x}",
            self.0[3], self.0[2], self.0[1], self.0[0]
        )
    }
}

impl U512 {
    /// Returns bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 512`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < 512, "bit index out of range");
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Returns the number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        for limb in (0..8).rev() {
            if self.0[limb] != 0 {
                return limb * 64 + (64 - self.0[limb].leading_zeros() as usize);
            }
        }
        0
    }

    /// Widens a 256-bit value into the low half.
    pub fn from_u256(v: &U256) -> U512 {
        let mut out = [0u64; 8];
        out[..4].copy_from_slice(&v.0);
        U512(out)
    }
}

impl fmt::Debug for U512 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U512(0x")?;
        for i in (0..8).rev() {
            write!(f, "{:016x}", self.0[i])?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_small() {
        let a = U256::from_u64(7);
        let b = U256::from_u64(9);
        let (s, c) = a.overflowing_add(&b);
        assert_eq!(s, U256::from_u64(16));
        assert!(!c);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = U256([u64::MAX, 0, 0, 0]);
        let (s, c) = a.overflowing_add(&U256::ONE);
        assert_eq!(s, U256([0, 1, 0, 0]));
        assert!(!c);
    }

    #[test]
    fn add_overflow_wraps() {
        let (s, c) = U256::MAX.overflowing_add(&U256::ONE);
        assert_eq!(s, U256::ZERO);
        assert!(c);
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = U256([0, 1, 0, 0]);
        let (d, b) = a.overflowing_sub(&U256::ONE);
        assert_eq!(d, U256([u64::MAX, 0, 0, 0]));
        assert!(!b);
    }

    #[test]
    fn sub_underflow_wraps() {
        let (d, b) = U256::ZERO.overflowing_sub(&U256::ONE);
        assert_eq!(d, U256::MAX);
        assert!(b);
    }

    #[test]
    fn mul_small() {
        let a = U256::from_u64(1 << 40);
        let b = U256::from_u64(1 << 40);
        let p = a.widening_mul(&b);
        assert_eq!(p.0[1], 1 << 16);
        assert_eq!(p.0[0], 0);
    }

    #[test]
    fn mul_max_is_correct() {
        // (2^256 - 1)^2 = 2^512 - 2^257 + 1.
        let p = U256::MAX.widening_mul(&U256::MAX);
        assert_eq!(p.0[0], 1);
        assert_eq!(p.0[1], 0);
        assert_eq!(p.0[2], 0);
        assert_eq!(p.0[3], 0);
        assert_eq!(p.0[4], u64::MAX - 1);
        assert_eq!(p.0[5], u64::MAX);
        assert_eq!(p.0[6], u64::MAX);
        assert_eq!(p.0[7], u64::MAX);
    }

    #[test]
    fn shl1_reports_carry() {
        let top = U256([0, 0, 0, 1 << 63]);
        let (v, c) = top.shl1();
        assert_eq!(v, U256::ZERO);
        assert!(c);
    }

    #[test]
    fn shr1_moves_bits_down() {
        let v = U256([0, 1, 0, 0]);
        assert_eq!(v.shr1(), U256([1 << 63, 0, 0, 0]));
    }

    #[test]
    fn byte_roundtrip() {
        let v = U256([
            0x0123456789abcdef,
            0xfedcba9876543210,
            0xdeadbeefcafebabe,
            0x0011223344556677,
        ]);
        assert_eq!(U256::from_be_bytes(&v.to_be_bytes()), v);
    }

    #[test]
    fn hex_parse_matches_display() {
        let v = U256::from_hex("988375c084ea6e192df1a1badef3eab8e50f848f2335e64624784f933634954f")
            .unwrap();
        assert_eq!(
            v.to_string(),
            "988375c084ea6e192df1a1badef3eab8e50f848f2335e64624784f933634954f"
        );
    }

    #[test]
    fn hex_parse_short_and_odd() {
        assert_eq!(U256::from_hex("f").unwrap(), U256::from_u64(15));
        assert_eq!(U256::from_hex("10").unwrap(), U256::from_u64(16));
        assert!(U256::from_hex("").is_none());
        assert!(U256::from_hex("xyz").is_none());
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!(U256::MAX.bits(), 256);
        let v = U256([0, 0, 1, 0]);
        assert_eq!(v.bits(), 129);
        assert!(v.bit(128));
        assert!(!v.bit(127));
    }

    #[test]
    fn ordering_is_numeric() {
        let small = U256([u64::MAX, u64::MAX, u64::MAX, 0]);
        let big = U256([0, 0, 0, 1]);
        assert!(small < big);
        assert!(big > small);
        assert_eq!(big.cmp(&big), Ordering::Equal);
    }
}
