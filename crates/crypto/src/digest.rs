//! Digest newtypes and hex formatting helpers.

use std::fmt;

/// A 256-bit digest (SHA-256 output).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest256(pub [u8; 32]);

/// A 160-bit digest (SHA-1 output); the width of a PAST fileId.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest160(pub [u8; 20]);

impl Digest256 {
    /// Returns the 128 most-significant bits as a `u128`.
    ///
    /// PAST nodeIds are "derived from a cryptographic hash of the node's
    /// public key"; we take the leading 128 bits of the SHA-256 digest.
    pub fn high_u128(&self) -> u128 {
        let mut raw = [0u8; 16];
        raw.copy_from_slice(&self.0[..16]);
        u128::from_be_bytes(raw)
    }
}

impl Digest160 {
    /// Returns the 128 most-significant bits as a `u128`.
    ///
    /// The paper: lookups route "towards the node whose nodeId is
    /// numerically closest to the 128 most significant bits (msb) of the
    /// fileId".
    pub fn high_u128(&self) -> u128 {
        let mut raw = [0u8; 16];
        raw.copy_from_slice(&self.0[..16]);
        u128::from_be_bytes(raw)
    }
}

fn write_hex(f: &mut fmt::Formatter<'_>, bytes: &[u8]) -> fmt::Result {
    for b in bytes {
        write!(f, "{b:02x}")?;
    }
    Ok(())
}

impl fmt::Display for Digest256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_hex(f, &self.0)
    }
}

impl fmt::Debug for Digest256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest256(")?;
        write_hex(f, &self.0[..8])?;
        write!(f, "…)")
    }
}

impl fmt::Display for Digest160 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_hex(f, &self.0)
    }
}

impl fmt::Debug for Digest160 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest160(")?;
        write_hex(f, &self.0[..8])?;
        write!(f, "…)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::sha1;
    use crate::sha256::sha256;

    #[test]
    fn high_bits_are_leading_bytes() {
        let d = Digest256(sha256(b"x"));
        let expect = u128::from_be_bytes(d.0[..16].try_into().unwrap());
        assert_eq!(d.high_u128(), expect);
        let d = Digest160(sha1(b"x"));
        let expect = u128::from_be_bytes(d.0[..16].try_into().unwrap());
        assert_eq!(d.high_u128(), expect);
    }

    #[test]
    fn display_is_full_hex() {
        let d = Digest160(sha1(b"abc"));
        assert_eq!(d.to_string(), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }
}
