//! SHA-1 (RFC 3174), implemented from scratch.
//!
//! PAST fileIds are 160 bits wide (the paper: "each file ... is assigned a
//! 160-bit fileId, corresponding to the cryptographic hash of the file's
//! textual name, the owner's public key and a random salt"). A 160-bit hash
//! of the 2001 era is SHA-1, so we provide it for fileId derivation. SHA-1
//! is cryptographically broken today; it is used here solely to reproduce
//! the paper's identifier geometry, not for security claims.

const H0: [u32; 5] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0];

/// Incremental SHA-1 hasher.
///
/// # Examples
///
/// ```
/// use past_crypto::sha1::{sha1, Sha1};
///
/// let mut h = Sha1::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), sha1(b"abc"));
/// ```
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Sha1 {
        Sha1 {
            state: H0,
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&rest[..64]);
            self.compress(&block);
            rest = &rest[64..];
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes the computation, returning the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5a827999),
                20..=39 => (b ^ c ^ d, 0x6ed9eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let t = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = t;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_vector() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha1(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..300u16).map(|i| (i * 7) as u8).collect();
        for split in [0, 1, 63, 64, 65, 150, 300] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha1(&data), "split at {split}");
        }
    }
}
