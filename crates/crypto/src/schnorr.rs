//! Schnorr signatures over a 256-bit prime-field group.
//!
//! The PAST paper requires an unforgeable public-key signature scheme for
//! file certificates, store receipts and reclaim certificates, but does not
//! prescribe one. We implement classic Schnorr signatures in the subgroup of
//! quadratic residues of `Z_p^*` for a baked-in 256-bit safe prime
//! `p = 2q + 1` (generated offline with seed 20010601 and re-validated by
//! the Miller–Rabin test in `modmath`). Nonces are derived
//! deterministically from the secret key and the message (RFC-6979 style),
//! which keeps simulations reproducible and avoids nonce-reuse pitfalls.

use crate::modmath::{addmod, mulmod, powmod, rem256};
use crate::sha256::Sha256;
use crate::u256::U256;

/// The 256-bit safe prime `p` defining the group `Z_p^*`.
pub fn group_p() -> U256 {
    U256([
        0x24784f933634954f,
        0xe50f848f2335e646,
        0x2df1a1badef3eab8,
        0x988375c084ea6e19,
    ])
}

/// The 255-bit prime order `q = (p - 1) / 2` of the signing subgroup.
pub fn group_q() -> U256 {
    U256([
        0x123c27c99b1a4aa7,
        0x7287c247919af323,
        0x96f8d0dd6f79f55c,
        0x4c41bae04275370c,
    ])
}

/// The subgroup generator `g = 4 = 2^2`, a quadratic residue of order `q`.
pub fn group_g() -> U256 {
    U256::from_u64(4)
}

/// A public verification key (a group element `y = g^x mod p`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PublicKey(pub U256);

impl PublicKey {
    /// Serializes the key to 32 big-endian bytes (input to nodeId hashing).
    pub fn to_bytes(self) -> [u8; 32] {
        self.0.to_be_bytes()
    }
}

/// A Schnorr signature `(R, s)` with `R = g^k` and `s = k + e·x mod q`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature {
    /// The public nonce commitment `R = g^k mod p`.
    pub commitment: U256,
    /// The response scalar `s = k + e·x mod q`.
    pub response: U256,
}

impl Signature {
    /// Serializes the signature to 64 bytes (`R ‖ s`, big-endian halves).
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.commitment.to_be_bytes());
        out[32..].copy_from_slice(&self.response.to_be_bytes());
        out
    }
}

/// A private/public key pair.
#[derive(Clone)]
pub struct KeyPair {
    secret: U256,
    /// The public half, freely shareable.
    pub public: PublicKey,
}

impl std::fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the secret scalar.
        f.debug_struct("KeyPair")
            .field("public", &self.public)
            .finish_non_exhaustive()
    }
}

/// Hashes arbitrary labeled byte strings to a nonzero scalar modulo `q`.
fn hash_to_scalar(label: &[u8], parts: &[&[u8]]) -> U256 {
    let q = group_q();
    let mut counter = 0u32;
    loop {
        let mut h = Sha256::new();
        h.update(label);
        h.update(&counter.to_be_bytes());
        for part in parts {
            h.update(&(part.len() as u64).to_be_bytes());
            h.update(part);
        }
        let digest = h.finalize();
        let scalar = rem256(&U256::from_be_bytes(&digest), &q);
        if !scalar.is_zero() {
            return scalar;
        }
        counter += 1;
    }
}

impl KeyPair {
    /// Derives a key pair deterministically from a seed.
    ///
    /// # Examples
    ///
    /// ```
    /// use past_crypto::schnorr::KeyPair;
    ///
    /// let kp = KeyPair::from_seed(b"card-0001");
    /// let sig = kp.sign(b"hello");
    /// assert!(kp.public.verify(b"hello", &sig));
    /// ```
    pub fn from_seed(seed: &[u8]) -> KeyPair {
        let secret = hash_to_scalar(b"past-keygen-v1", &[seed]);
        let public = PublicKey(powmod(&group_g(), &secret, &group_p()));
        KeyPair { secret, public }
    }

    /// Signs a message with a deterministic nonce.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let p = group_p();
        let q = group_q();
        let k = hash_to_scalar(b"past-nonce-v1", &[&self.secret.to_be_bytes(), msg]);
        let commitment = powmod(&group_g(), &k, &p);
        let e = challenge(&commitment, &self.public, msg);
        // s = k + e·x mod q.
        let response = addmod(&k, &mulmod(&e, &self.secret, &q), &q);
        Signature {
            commitment,
            response,
        }
    }
}

/// The Fiat–Shamir challenge `e = H(R ‖ y ‖ msg) mod q`.
fn challenge(commitment: &U256, public: &PublicKey, msg: &[u8]) -> U256 {
    hash_to_scalar(
        b"past-chal-v1",
        &[&commitment.to_be_bytes(), &public.0.to_be_bytes(), msg],
    )
}

impl PublicKey {
    /// Verifies `sig` over `msg`: checks `g^s ≡ R · y^e (mod p)`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        let p = group_p();
        if sig.commitment.is_zero() || sig.commitment >= p || self.0.is_zero() || self.0 >= p {
            return false;
        }
        let e = challenge(&sig.commitment, self, msg);
        let lhs = powmod(&group_g(), &sig.response, &p);
        let rhs = mulmod(&sig.commitment, &powmod(&self.0, &e, &p), &p);
        lhs == rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = KeyPair::from_seed(b"user-42");
        let sig = kp.sign(b"insert file 7");
        assert!(kp.public.verify(b"insert file 7", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let kp = KeyPair::from_seed(b"user-42");
        let sig = kp.sign(b"msg-a");
        assert!(!kp.public.verify(b"msg-b", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = KeyPair::from_seed(b"user-1");
        let kp2 = KeyPair::from_seed(b"user-2");
        let sig = kp1.sign(b"msg");
        assert!(!kp2.public.verify(b"msg", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = KeyPair::from_seed(b"user-1");
        let mut sig = kp.sign(b"msg");
        sig.response = addmod(&sig.response, &U256::ONE, &group_q());
        assert!(!kp.public.verify(b"msg", &sig));
        let mut sig2 = kp.sign(b"msg");
        sig2.commitment = mulmod(&sig2.commitment, &group_g(), &group_p());
        assert!(!kp.public.verify(b"msg", &sig2));
    }

    #[test]
    fn degenerate_values_rejected() {
        let kp = KeyPair::from_seed(b"user-1");
        let sig = Signature {
            commitment: U256::ZERO,
            response: U256::ONE,
        };
        assert!(!kp.public.verify(b"msg", &sig));
        let bogus_key = PublicKey(U256::ZERO);
        assert!(!bogus_key.verify(b"msg", &kp.sign(b"msg")));
    }

    #[test]
    fn deterministic_keys_and_signatures() {
        let a = KeyPair::from_seed(b"same-seed");
        let b = KeyPair::from_seed(b"same-seed");
        assert_eq!(a.public, b.public);
        assert_eq!(a.sign(b"m"), b.sign(b"m"));
    }

    #[test]
    fn distinct_seeds_give_distinct_keys() {
        let a = KeyPair::from_seed(b"seed-a");
        let b = KeyPair::from_seed(b"seed-b");
        assert_ne!(a.public, b.public);
    }

    #[test]
    fn generator_has_order_q() {
        let p = group_p();
        let q = group_q();
        assert_eq!(powmod(&group_g(), &q, &p), U256::ONE);
        // g itself is not the identity.
        assert_ne!(group_g(), U256::ONE);
    }

    #[test]
    fn public_key_in_subgroup() {
        let kp = KeyPair::from_seed(b"subgroup-check");
        assert_eq!(powmod(&kp.public.0, &group_q(), &group_p()), U256::ONE);
    }

    #[test]
    fn debug_does_not_leak_secret() {
        let kp = KeyPair::from_seed(b"secret-stays-secret");
        let rendered = format!("{kp:?}");
        assert!(!rendered.contains(&kp.secret.to_string()));
    }
}
