#!/usr/bin/env bash
# Tier-1 entry point: everything a change must pass before merging.
#
# Runs fully offline — the workspace has no registry dependencies, and
# `cargo run -p xtask -- check` (rule H1) keeps it that way.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

# Lint first so violations fail fast, before the release build; the
# JSON diagnostics are archived as a build artifact either way.
echo "== xtask check (hermeticity / determinism / layering / message hygiene)"
mkdir -p target
if ! cargo run --offline -q -p xtask -- check --format json > target/xtask_check.json; then
  echo "xtask check failed; diagnostics (also in target/xtask_check.json):"
  cargo run --offline -q -p xtask -- check || true
  exit 1
fi

echo "== invariant gate (I1-I5 over bulk-join / churn / quota-reclaim / lossy-churn, sequential + sharded)"
mkdir -p target
cargo run --offline -q -p past-invariants --bin invariants -- \
  --emit-trace target/trace_lossy.jsonl \
  --emit-trace-sharded target/trace_lossy_sharded.jsonl \
  --emit-series target/series_lossy.jsonl \
  --emit-series-sharded target/series_lossy_sharded.jsonl

echo "== tracecheck (no stuck ops, insert fan-out == k, hops vs log2^b N)"
cargo run --offline -q -p past-trace --bin tracecheck -- --require-clean target/trace_lossy.jsonl
cargo run --offline -q -p past-trace --bin tracecheck -- --require-clean target/trace_lossy_sharded.jsonl

echo "== obsreport (flight-recorder SLO gate: no stalled windows, rejection/utilization in bounds)"
cargo run --offline -q -p past-trace --bin obsreport -- --require-slo target/series_lossy.jsonl
cargo run --offline -q -p past-trace --bin obsreport -- --require-slo target/series_lossy_sharded.jsonl

echo "== cargo build --release"
cargo build --offline --release --workspace

echo "== cargo test -q"
cargo test --offline -q --workspace

echo "== codec fuzz smoke (wire decode must be total on mutated frames)"
cargo test --offline -q -p past --test wire decode_never_panics_on_mutated_frames

echo "== bench smoke (binaries run and emit valid BENCH_*.json)"
./target/release/bench_micro --smoke --out target/BENCH_micro.smoke.json
./target/release/bench_macro --smoke --out target/BENCH_macro.smoke.json \
  --series target/BENCH_series.json
./target/release/bench_loss --smoke --out target/BENCH_loss.smoke.json
grep -q '"schema": "past-bench/v1"' target/BENCH_micro.smoke.json
grep -q '"schema": "past-bench/v1"' target/BENCH_macro.smoke.json
grep -q '"schema": "past-bench/v1"' target/BENCH_loss.smoke.json
grep -q '"schema": "past-series/v1"' target/BENCH_series.json

# Scale gate: a 100k-node overlay must build, route, and survive churn
# on the sharded backend inside the wall-clock budget (the budget only
# catches order-of-magnitude regressions in the event loop). The run
# also repeats the churn phase at 1 shard in-process and asserts the
# simulation counters are identical — shard-count independence at
# 100k-node scale on every CI run. The JSON (with the 1-shard churn
# reference and speedup) is archived in target/.
echo "== bench macro 100k sharded scale gate (budget ${BENCH_MACRO_BUDGET_S:-120}s)"
timeout "${BENCH_MACRO_BUDGET_S:-120}" \
  ./target/release/bench_macro --nodes 100000 --smoke --shards 4 --out target/BENCH_macro.100k.json
grep -q '"schema": "past-bench/v1"' target/BENCH_macro.100k.json

echo "tier-1: all green"
