#!/usr/bin/env bash
# Tier-1 entry point: everything a change must pass before merging.
#
# Runs fully offline — the workspace has no registry dependencies, and
# `cargo run -p xtask -- check` (rule H1) keeps it that way.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

# Lint first so violations fail fast, before the release build; the
# JSON diagnostics are archived as a build artifact either way.
echo "== xtask check (hermeticity / determinism / layering / message hygiene)"
mkdir -p target
if ! cargo run --offline -q -p xtask -- check --format json > target/xtask_check.json; then
  echo "xtask check failed; diagnostics (also in target/xtask_check.json):"
  cargo run --offline -q -p xtask -- check || true
  exit 1
fi

echo "== invariant gate (I1-I5 over bulk-join / churn / quota-reclaim / lossy-churn)"
mkdir -p target
cargo run --offline -q -p past-invariants --bin invariants -- --emit-trace target/trace_lossy.jsonl

echo "== tracecheck (no stuck ops, insert fan-out == k, hops vs log2^b N)"
cargo run --offline -q -p past-trace --bin tracecheck -- --require-clean target/trace_lossy.jsonl

echo "== cargo build --release"
cargo build --offline --release --workspace

echo "== cargo test -q"
cargo test --offline -q --workspace

echo "== bench smoke (binaries run and emit valid BENCH_*.json)"
./target/release/bench_micro --smoke --out target/BENCH_micro.smoke.json
./target/release/bench_macro --smoke --out target/BENCH_macro.smoke.json
./target/release/bench_loss --smoke --out target/BENCH_loss.smoke.json
grep -q '"schema": "past-bench/v1"' target/BENCH_micro.smoke.json
grep -q '"schema": "past-bench/v1"' target/BENCH_macro.smoke.json
grep -q '"schema": "past-bench/v1"' target/BENCH_loss.smoke.json

# Scale gate: a 100k-node overlay must build, route, and survive churn
# inside the wall-clock budget (a 10k-seed machine does it in ~16 s;
# the budget only catches order-of-magnitude regressions in the event
# loop). The JSON is archived in target/ alongside the smoke outputs.
echo "== bench macro 100k scale gate (budget ${BENCH_MACRO_BUDGET_S:-120}s)"
timeout "${BENCH_MACRO_BUDGET_S:-120}" \
  ./target/release/bench_macro --nodes 100000 --smoke --out target/BENCH_macro.100k.json
grep -q '"schema": "past-bench/v1"' target/BENCH_macro.100k.json

echo "tier-1: all green"
