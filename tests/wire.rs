//! Wire-codec conformance for every protocol message (DESIGN.md §13).
//!
//! Three obligations, enforced per variant of all four message enums
//! (`PastryMsg`, `PastMsg`, `ChordMsg`, `CanMsg`):
//!
//! 1. **Exact round-trip** — `decode(encode(m))` reconstructs an equal
//!    value and consumes exactly the encoded bytes.
//! 2. **Honest sizes** — `wire_size()` / `payload_size()` equal
//!    `encode().len()`. These counters feed every bandwidth number in
//!    EXPERIMENTS.md; an estimate that drifts from the codec is a bug.
//! 3. **Total decoding** — `decode` on arbitrary mutated frames returns
//!    `Ok` or a typed `DecodeError`, never panics (seeded corpus of
//!    >10 000 truncations, bit flips, and length-prefix splices).
//!
//! Golden hex vectors pin one frame of every kind so accidental layout
//! changes (field order, endianness, header bytes) fail loudly even if
//! they round-trip.

use past::baselines::can::{CanLookup, CanMsg};
use past::baselines::chord::{ChordLookup, ChordMsg};
use past::core::{
    CardCert, ContentRef, FileCertificate, FileId, NackReason, PastMsg, ReclaimCertificate,
    ReclaimReceipt, StoreReceipt,
};
use past::crypto::rng::Rng;
use past::crypto::u256::U256;
use past::crypto::{Digest160, Digest256, PublicKey, Signature};
use past::netsim::{Message, OpId};
use past::pastry::{Id, NodeHandle, PastryMsg, PayloadSize, RouteEnvelope};
use past::wire::{DecodeError, Wire, WIRE_VERSION};

// ---------------------------------------------------------- fixtures

fn u256(rng: &mut Rng) -> U256 {
    U256([rng.random(), rng.random(), rng.random(), rng.random()])
}

fn sig(rng: &mut Rng) -> Signature {
    Signature {
        commitment: u256(rng),
        response: u256(rng),
    }
}

fn d160(rng: &mut Rng) -> Digest160 {
    let mut b = [0u8; 20];
    rng.fill_bytes(&mut b);
    Digest160(b)
}

fn d256(rng: &mut Rng) -> Digest256 {
    let mut b = [0u8; 32];
    rng.fill_bytes(&mut b);
    Digest256(b)
}

fn card(rng: &mut Rng) -> CardCert {
    CardCert {
        card_key: PublicKey(u256(rng)),
        broker_key: PublicKey(u256(rng)),
        broker_sig: sig(rng),
    }
}

fn fcert(rng: &mut Rng, size: u64) -> FileCertificate {
    FileCertificate {
        file_id: FileId(d160(rng)),
        content_hash: d256(rng),
        size,
        replication: rng.random_range(1..=5) as u8,
        salt: rng.random(),
        inserted_at: rng.random(),
        owner: card(rng),
        signature: sig(rng),
    }
}

fn content(rng: &mut Rng, size: u64) -> ContentRef {
    ContentRef {
        hash: d256(rng),
        size,
    }
}

fn rcert(rng: &mut Rng) -> ReclaimCertificate {
    ReclaimCertificate {
        file_id: FileId(d160(rng)),
        owner: card(rng),
        signature: sig(rng),
    }
}

fn receipt(rng: &mut Rng) -> StoreReceipt {
    StoreReceipt {
        file_id: FileId(d160(rng)),
        stored: rng.random(),
        diverted: rng.random_range(0..2) == 1,
        storer: card(rng),
        signature: sig(rng),
    }
}

fn rreceipt(rng: &mut Rng) -> ReclaimReceipt {
    ReclaimReceipt {
        file_id: FileId(d160(rng)),
        freed: rng.random(),
        storer: card(rng),
        signature: sig(rng),
    }
}

fn handle(rng: &mut Rng) -> NodeHandle {
    NodeHandle {
        id: Id(rng.random::<u128>()),
        addr: rng.random_range(0usize..1 << 32),
    }
}

fn handles(rng: &mut Rng, n: usize) -> Vec<NodeHandle> {
    (0..n).map(|_| handle(rng)).collect()
}

fn addrs(rng: &mut Rng, n: usize) -> Vec<usize> {
    (0..n).map(|_| rng.random_range(0usize..1 << 32)).collect()
}

/// One sample of every `PastryMsg` variant (in `KINDS` order).
fn pastry_samples(rng: &mut Rng) -> Vec<PastryMsg<u64>> {
    vec![
        PastryMsg::Route(RouteEnvelope {
            key: Id(rng.random::<u64>() as u128),
            payload: rng.random::<u64>(),
            origin: rng.random_range(0..512),
            hops: rng.random_range(0..8) as u32,
            path_us: rng.random(),
        }),
        PastryMsg::JoinRequest {
            joiner: handle(rng),
            rows: handles(rng, 5),
            rows_done: rng.random_range(0..32) as usize,
            hops: rng.random_range(0..8) as u32,
        },
        PastryMsg::JoinReply {
            z: handle(rng),
            rows: handles(rng, 4),
            leaf: handles(rng, 3),
            hops: rng.random_range(0..8) as u32,
        },
        PastryMsg::NeighborhoodRequest,
        PastryMsg::NeighborhoodReply {
            members: handles(rng, 3),
        },
        PastryMsg::Announce { from: handle(rng) },
        PastryMsg::LeafRequest,
        PastryMsg::LeafReply {
            members: handles(rng, 6),
        },
        PastryMsg::RowRequest {
            row: rng.random_range(0..32) as usize,
        },
        PastryMsg::RowReply {
            entries: handles(rng, 2),
        },
        PastryMsg::RepairRequest {
            row: rng.random_range(0..32) as usize,
            col: rng.random_range(0..16) as usize,
        },
        PastryMsg::RepairReply {
            entry: if rng.random_range(0..2) == 1 {
                Some(handle(rng))
            } else {
                None
            },
        },
        PastryMsg::Heartbeat,
        PastryMsg::HeartbeatAck,
        PastryMsg::AppDirect {
            payload: rng.random::<u64>(),
        },
    ]
}

/// One sample of every `PastMsg` variant (in wire-tag order, 0..=17).
fn past_samples(rng: &mut Rng) -> Vec<PastMsg> {
    let size = rng.random_range(1u64..2048);
    vec![
        PastMsg::Insert {
            cert: fcert(rng, size),
            content: content(rng, size),
            client: rng.random_range(0..512) as usize,
            op: OpId(rng.random()),
        },
        PastMsg::Lookup {
            file_id: FileId(d160(rng)),
            client: rng.random_range(0..512) as usize,
            path: addrs(rng, 3),
            redirected: rng.random_range(0..2) == 1,
            op: OpId(rng.random()),
        },
        PastMsg::Reclaim {
            rcert: rcert(rng),
            client: rng.random_range(0..512) as usize,
            op: OpId(rng.random()),
        },
        PastMsg::Replicate {
            cert: fcert(rng, size),
            content: content(rng, size),
            client: if rng.random_range(0..2) == 1 {
                Some(rng.random_range(0..512) as usize)
            } else {
                None
            },
            op: OpId(rng.random()),
        },
        PastMsg::DivertStore {
            cert: fcert(rng, size),
            content: content(rng, size),
            primary: rng.random_range(0..512) as usize,
            client: rng.random_range(0..512) as usize,
            op: OpId(rng.random()),
        },
        PastMsg::DivertAck {
            file_id: FileId(d160(rng)),
            op: OpId(rng.random()),
        },
        PastMsg::DivertNack {
            file_id: FileId(d160(rng)),
            op: OpId(rng.random()),
        },
        PastMsg::StoreAck {
            receipt: receipt(rng),
            op: OpId(rng.random()),
        },
        PastMsg::InsertNack {
            file_id: FileId(d160(rng)),
            reason: match rng.random_range(0..4) {
                0 => NackReason::BadCertificate,
                1 => NackReason::StoreRefused,
                2 => NackReason::TargetDead,
                _ => NackReason::InsufficientNodes,
            },
            op: OpId(rng.random()),
        },
        PastMsg::LookupHop {
            file_id: FileId(d160(rng)),
            client: rng.random_range(0..512) as usize,
            path: addrs(rng, 4),
            terminal: rng.random_range(0..2) == 1,
            op: OpId(rng.random()),
        },
        PastMsg::FileReply {
            cert: fcert(rng, size),
            from_cache: rng.random_range(0..2) == 1,
            op: OpId(rng.random()),
        },
        PastMsg::LookupMiss {
            file_id: FileId(d160(rng)),
            op: OpId(rng.random()),
        },
        PastMsg::ReclaimFree {
            rcert: rcert(rng),
            client: rng.random_range(0..512) as usize,
            op: OpId(rng.random()),
        },
        PastMsg::ReclaimAck {
            receipt: rreceipt(rng),
            op: OpId(rng.random()),
        },
        PastMsg::ReclaimDenied {
            file_id: FileId(d160(rng)),
            op: OpId(rng.random()),
        },
        PastMsg::CachePush {
            cert: fcert(rng, size),
        },
        PastMsg::AuditChallenge {
            file_id: FileId(d160(rng)),
            nonce: rng.random(),
        },
        PastMsg::AuditProof {
            file_id: FileId(d160(rng)),
            proof: if rng.random_range(0..2) == 1 {
                Some(d256(rng))
            } else {
                None
            },
        },
    ]
}

fn chord_sample(rng: &mut Rng) -> ChordMsg {
    ChordMsg::Lookup(ChordLookup {
        key: Id(rng.random::<u128>()),
        origin: rng.random_range(0..512) as usize,
        hops: rng.random_range(0..40) as u32,
        path_us: rng.random(),
        terminal: rng.random_range(0..2) == 1,
    })
}

fn can_sample(rng: &mut Rng) -> CanMsg {
    let d = rng.random_range(1..=8) as usize;
    CanMsg::Lookup(CanLookup {
        target: (0..d)
            .map(|_| rng.random::<u64>() as f64 / u64::MAX as f64)
            .collect(),
        origin: rng.random_range(0..512) as usize,
        hops: rng.random_range(0..40) as u32,
        path_us: rng.random(),
    })
}

/// The message enums derive `Clone + Debug` but (deliberately) not
/// `PartialEq`; the `Debug` rendering is total over every field, so it
/// is the equality the round-trip asserts.
fn assert_roundtrip<T: Wire + std::fmt::Debug>(m: &T, what: &str) {
    let bytes = m.to_wire();
    assert_eq!(
        bytes.len() as u64,
        m.encoded_len(),
        "{what}: encoded_len() lies about encode().len()"
    );
    let (back, used) = match T::decode(&bytes) {
        Ok(r) => r,
        Err(e) => panic!("{what}: decode failed: {e}"),
    };
    assert_eq!(used, bytes.len(), "{what}: decode left trailing bytes");
    assert_eq!(
        format!("{m:?}"),
        format!("{back:?}"),
        "{what}: round-trip changed the value"
    );
}

// ------------------------------------------------- per-variant audit

#[test]
fn every_pastry_variant_roundtrips_and_sizes_honestly() {
    let mut rng = Rng::seed_from_u64(0x3133_0001);
    for round in 0..16 {
        let samples = pastry_samples(&mut rng);
        assert_eq!(
            samples.len(),
            <PastryMsg<u64> as Message>::KINDS.len(),
            "sample list must cover every variant"
        );
        for m in &samples {
            let what = format!(
                "PastryMsg::{} (round {round})",
                <PastryMsg<u64> as Message>::KINDS[m.kind_id()]
            );
            assert_roundtrip(m, &what);
            assert_eq!(
                m.wire_size(),
                m.to_wire().len() as u64,
                "{what}: wire_size() lies"
            );
        }
    }
}

#[test]
fn every_past_variant_roundtrips_and_sizes_honestly() {
    // Compile-time exhaustiveness: adding a `PastMsg` variant breaks
    // this match, forcing the sample list (and the codec) to grow.
    fn wire_tag(m: &PastMsg) -> u8 {
        match m {
            PastMsg::Insert { .. } => 0,
            PastMsg::Lookup { .. } => 1,
            PastMsg::Reclaim { .. } => 2,
            PastMsg::Replicate { .. } => 3,
            PastMsg::DivertStore { .. } => 4,
            PastMsg::DivertAck { .. } => 5,
            PastMsg::DivertNack { .. } => 6,
            PastMsg::StoreAck { .. } => 7,
            PastMsg::InsertNack { .. } => 8,
            PastMsg::LookupHop { .. } => 9,
            PastMsg::FileReply { .. } => 10,
            PastMsg::LookupMiss { .. } => 11,
            PastMsg::ReclaimFree { .. } => 12,
            PastMsg::ReclaimAck { .. } => 13,
            PastMsg::ReclaimDenied { .. } => 14,
            PastMsg::CachePush { .. } => 15,
            PastMsg::AuditChallenge { .. } => 16,
            PastMsg::AuditProof { .. } => 17,
        }
    }
    let mut rng = Rng::seed_from_u64(0x3133_0002);
    for round in 0..16 {
        let samples = past_samples(&mut rng);
        assert_eq!(samples.len(), 18, "sample list must cover every variant");
        for (i, m) in samples.iter().enumerate() {
            assert_eq!(wire_tag(m), i as u8, "samples out of wire-tag order");
            let what = format!("PastMsg tag {i} (round {round})");
            assert_roundtrip(m, &what);
            assert_eq!(
                m.payload_size(),
                m.to_wire().len() as u64,
                "{what}: payload_size() lies"
            );
            assert_eq!(m.to_wire()[1], i as u8, "{what}: kind byte");
        }
    }
}

#[test]
fn baseline_variants_roundtrip_and_size_honestly() {
    let mut rng = Rng::seed_from_u64(0x3133_0003);
    for round in 0..64 {
        let c = chord_sample(&mut rng);
        assert_roundtrip(&c, &format!("ChordMsg (round {round})"));
        assert_eq!(c.wire_size(), c.to_wire().len() as u64);
        let a = can_sample(&mut rng);
        assert_roundtrip(&a, &format!("CanMsg (round {round})"));
        assert_eq!(a.wire_size(), a.to_wire().len() as u64);
    }
}

#[test]
fn nested_past_in_pastry_roundtrips() {
    // The deployment frame: a PAST message riding a Pastry route.
    let mut rng = Rng::seed_from_u64(0x3133_0004);
    for m in past_samples(&mut rng) {
        let framed = PastryMsg::Route(RouteEnvelope {
            key: Id(rng.random::<u64>() as u128),
            payload: m,
            origin: 3,
            hops: 2,
            path_us: 77,
        });
        assert_roundtrip(&framed, "PastryMsg::Route(PastMsg)");
        assert_eq!(framed.wire_size(), framed.to_wire().len() as u64);
    }
}

// --------------------------------------------------------- fuzzing

enum Frame {
    Pastry(Vec<u8>),
    Past(Vec<u8>),
    Chord(Vec<u8>),
    Can(Vec<u8>),
}

impl Frame {
    fn bytes(&self) -> &[u8] {
        match self {
            Frame::Pastry(b) | Frame::Past(b) | Frame::Chord(b) | Frame::Can(b) => b,
        }
    }

    /// Decoding must be total: `Ok` or a typed error, never a panic,
    /// and a successful decode never claims more bytes than it got.
    fn try_decode(&self, buf: &[u8]) -> Result<usize, DecodeError> {
        match self {
            Frame::Pastry(_) => PastryMsg::<PastMsg>::decode(buf).map(|(_, n)| n),
            Frame::Past(_) => PastMsg::decode(buf).map(|(_, n)| n),
            Frame::Chord(_) => ChordMsg::decode(buf).map(|(_, n)| n),
            Frame::Can(_) => CanMsg::decode(buf).map(|(_, n)| n),
        }
    }
}

fn corpus(rng: &mut Rng) -> Vec<Frame> {
    let mut out: Vec<Frame> = Vec::new();
    for m in past_samples(rng) {
        let framed = PastryMsg::Route(RouteEnvelope {
            key: Id(rng.random::<u64>() as u128),
            payload: m.clone(),
            origin: 1,
            hops: 0,
            path_us: 0,
        });
        out.push(Frame::Pastry(framed.to_wire()));
        out.push(Frame::Past(m.to_wire()));
    }
    // Pastry maintenance frames, with the PAST payload type plugged in.
    let maint: Vec<PastryMsg<PastMsg>> = vec![
        PastryMsg::JoinRequest {
            joiner: handle(rng),
            rows: handles(rng, 6),
            rows_done: 3,
            hops: 2,
        },
        PastryMsg::JoinReply {
            z: handle(rng),
            rows: handles(rng, 6),
            leaf: handles(rng, 4),
            hops: 3,
        },
        PastryMsg::NeighborhoodRequest,
        PastryMsg::NeighborhoodReply {
            members: handles(rng, 4),
        },
        PastryMsg::Announce { from: handle(rng) },
        PastryMsg::LeafRequest,
        PastryMsg::LeafReply {
            members: handles(rng, 8),
        },
        PastryMsg::RowRequest { row: 4 },
        PastryMsg::RowReply {
            entries: handles(rng, 3),
        },
        PastryMsg::RepairRequest { row: 2, col: 9 },
        PastryMsg::RepairReply {
            entry: Some(handle(rng)),
        },
        PastryMsg::Heartbeat,
        PastryMsg::HeartbeatAck,
    ];
    for m in &maint {
        out.push(Frame::Pastry(m.to_wire()));
    }
    out.push(Frame::Chord(chord_sample(rng).to_wire()));
    out.push(Frame::Can(can_sample(rng).to_wire()));
    out
}

#[test]
fn decode_never_panics_on_mutated_frames() {
    let mut rng = Rng::seed_from_u64(0xF022_1234_5678_9abc);
    let corpus = corpus(&mut rng);
    let mut attempts = 0u64;
    let mut oks = 0u64;
    let mut errs = 0u64;

    // Systematic truncation: every prefix of every corpus frame.
    for frame in &corpus {
        let b = frame.bytes();
        for cut in 0..=b.len() {
            attempts += 1;
            match frame.try_decode(&b[..cut]) {
                Ok(n) => {
                    assert!(n <= cut, "decode claimed {n} bytes of a {cut}-byte frame");
                    oks += 1;
                }
                Err(_) => errs += 1,
            }
        }
    }

    // Randomized mutations: bit flips, byte splices, length-prefix
    // forgeries, random garbage.
    for _ in 0..12_000 {
        attempts += 1;
        let frame = &corpus[rng.random_range(0..corpus.len() as u64) as usize];
        let mut b = frame.bytes().to_vec();
        match rng.random_range(0..4) {
            0 => {
                // Flip 1..=8 random bits.
                for _ in 0..rng.random_range(1..=8) {
                    let i = rng.random_range(0..b.len() as u64) as usize;
                    b[i] ^= 1u8 << rng.random_range(0u32..8);
                }
            }
            1 => {
                // Overwrite a random 4-byte window with a forged length.
                if b.len() >= 4 {
                    let i = rng.random_range(0..b.len() - 3);
                    let forged = rng.random::<u32>().to_le_bytes();
                    b[i..i + 4].copy_from_slice(&forged);
                }
            }
            2 => {
                // Truncate at a random point, then flip one bit.
                let cut = rng.random_range(0..=b.len() as u64) as usize;
                b.truncate(cut);
                if !b.is_empty() {
                    let i = rng.random_range(0..b.len() as u64) as usize;
                    b[i] ^= 1u8 << rng.random_range(0u32..8);
                }
            }
            _ => {
                // Replace the whole frame with random garbage of the
                // same length (first two bytes kept half the time so
                // the mutation reaches past the header checks).
                let keep_header = rng.random_range(0..2) == 1;
                let start = if keep_header { 2.min(b.len()) } else { 0 };
                for x in b[start..].iter_mut() {
                    *x = rng.random_range(0..256) as u8;
                }
            }
        }
        match frame.try_decode(&b) {
            Ok(n) => {
                assert!(n <= b.len(), "decode claimed {n} bytes of {}", b.len());
                oks += 1;
            }
            Err(_) => errs += 1,
        }
    }

    assert!(attempts >= 10_000, "fuzz corpus too small: {attempts}");
    assert!(errs > 0, "mutations never produced a decode error?");
    assert!(oks > 0, "even pristine prefixes never decoded?");
}

#[test]
fn typed_errors_name_the_failure() {
    let mut rng = Rng::seed_from_u64(0x3133_0005);
    let m = past_samples(&mut rng).remove(11); // LookupMiss: compact frame
    let bytes = m.to_wire();
    assert!(matches!(
        PastMsg::decode(&bytes[..bytes.len() - 1]).unwrap_err(),
        DecodeError::Truncated
    ));
    let mut bad_ver = bytes.clone();
    bad_ver[0] = WIRE_VERSION + 1;
    assert!(matches!(
        PastMsg::decode(&bad_ver).unwrap_err(),
        DecodeError::BadVersion(v) if v == WIRE_VERSION + 1
    ));
    let mut bad_kind = bytes.clone();
    bad_kind[1] = 18;
    assert!(matches!(
        PastMsg::decode(&bad_kind).unwrap_err(),
        DecodeError::UnknownKind(18)
    ));
    // A forged vector length that multiplies past the buffer.
    let lk = PastMsg::Lookup {
        file_id: FileId(d160(&mut rng)),
        client: 1,
        path: addrs(&mut rng, 2),
        redirected: false,
        op: OpId(9),
    };
    let mut bytes = lk.to_wire();
    let off = 2 + 20 + 8; // header, file_id, client — the path length prefix
    bytes[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        PastMsg::decode(&bytes).unwrap_err(),
        DecodeError::LengthOverflow
    ));
}

// ---------------------------------------------------- golden vectors

/// Deterministic fixture values (no RNG): byte-for-byte stable input
/// for the golden vectors.
fn fixed_rng() -> Rng {
    Rng::seed_from_u64(0x601D_601D_601D_601D)
}

/// One frame of every kind across all four enums, deterministic.
fn golden_frames() -> Vec<(String, Vec<u8>)> {
    let mut rng = fixed_rng();
    let mut out: Vec<(String, Vec<u8>)> = Vec::new();
    for m in pastry_samples(&mut rng) {
        let name = format!("pastry/{}", <PastryMsg<u64> as Message>::KINDS[m.kind_id()]);
        out.push((name, m.to_wire()));
    }
    for (i, m) in past_samples(&mut rng).into_iter().enumerate() {
        out.push((format!("past/{i:02}"), m.to_wire()));
    }
    out.push(("chord/lookup".to_string(), chord_sample(&mut rng).to_wire()));
    out.push(("can/lookup".to_string(), can_sample(&mut rng).to_wire()));
    out
}

fn hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

/// Every kind, pinned by length + SHA-256 (an in-tree primitive): any
/// layout change — field order, endianness, header — moves the digest
/// even when the frame still round-trips.
#[test]
fn golden_frame_digests() {
    use past::crypto::sha256::sha256;
    let actual: Vec<String> = golden_frames()
        .iter()
        .map(|(name, b)| format!("{name} len={} sha256={}", b.len(), hex(&sha256(b)[..8])))
        .collect();
    let expected = [
        "pastry/route len=46 sha256=9977bde9dab2e79f",
        "pastry/join_request len=156 sha256=3509c18758fb97ed",
        "pastry/join_reply len=206 sha256=fcf834f165fc56e4",
        "pastry/neighborhood_request len=2 sha256=c79b932e1e1da3c0",
        "pastry/neighborhood_reply len=78 sha256=facf0d549aae0bd6",
        "pastry/announce len=26 sha256=d4f6d816c3164444",
        "pastry/leaf_request len=2 sha256=44602a999abbebed",
        "pastry/leaf_reply len=150 sha256=ffb8c408a243513c",
        "pastry/row_request len=4 sha256=ca1f56439c793997",
        "pastry/row_reply len=54 sha256=20f128094a500324",
        "pastry/repair_request len=6 sha256=06b3f2e29f39e10c",
        "pastry/repair_reply len=3 sha256=ea462d1fc991f412",
        "pastry/heartbeat len=2 sha256=6b6daa8334bbcc8f",
        "pastry/heartbeat_ack len=2 sha256=c7b89cfb9abf2c4c",
        "pastry/app_direct len=10 sha256=ff819f080cc6729f",
        "past/00 len=1668 sha256=2329605df330d9bd",
        "past/01 len=67 sha256=ba3582e609c473aa",
        "past/02 len=230 sha256=5edf7c75400cd45a",
        "past/03 len=1661 sha256=85f4f0b8a9b99971",
        "past/04 len=1676 sha256=930f805f4ab2b1e1",
        "past/05 len=30 sha256=a766b29f3ec18111",
        "past/06 len=30 sha256=eaf3e4cbb60fc4e3",
        "past/07 len=231 sha256=85834dec9e3ab527",
        "past/08 len=31 sha256=27b5c3fc71919611",
        "past/09 len=75 sha256=94c6e57111fbbead",
        "past/10 len=1621 sha256=3396ec58c44306aa",
        "past/11 len=30 sha256=c9006aaacfb60e2f",
        "past/12 len=230 sha256=ba3333ab1708a7f7",
        "past/13 len=230 sha256=2972240bfdb39247",
        "past/14 len=30 sha256=034e365857457ef5",
        "past/15 len=1612 sha256=4b26735ead955c70",
        "past/16 len=30 sha256=2faa6c43a26437cf",
        "past/17 len=55 sha256=e5dc4b99b758c7a6",
        "chord/lookup len=39 sha256=a4c35c597dd19112",
        "can/lookup len=34 sha256=5e2e0d884261919f",
    ];
    assert_eq!(actual.len(), 35, "one golden frame per kind");
    for (a, e) in actual.iter().zip(expected.iter()) {
        assert_eq!(a, e, "golden frame moved");
    }
    assert_eq!(actual.len(), expected.len());
}

/// Full hex for a handful of compact frames: human-checkable layout
/// documentation (version byte, kind byte, little-endian fields).
#[test]
fn golden_hex_small_frames() {
    let heartbeat: PastryMsg<u64> = PastryMsg::Heartbeat;
    assert_eq!(hex(&heartbeat.to_wire()), "010c");
    let row_req: PastryMsg<u64> = PastryMsg::RowRequest { row: 5 };
    assert_eq!(hex(&row_req.to_wire()), "01080500");
    let announce: PastryMsg<u64> = PastryMsg::Announce {
        from: NodeHandle {
            id: Id(0x0102030405060708090a0b0c0d0e0f10),
            addr: 0x2a,
        },
    };
    assert_eq!(
        hex(&announce.to_wire()),
        // ver kind id-le(16) addr-le(8)
        "0105100f0e0d0c0b0a0908070605040302012a00000000000000"
    );
    let chord = ChordMsg::Lookup(ChordLookup {
        key: Id(1),
        origin: 2,
        hops: 3,
        path_us: 4,
        terminal: true,
    });
    assert_eq!(
        hex(&chord.to_wire()),
        "010001000000000000000000000000000000020000000000000003000000040000000000000001"
    );
    let audit = PastMsg::AuditChallenge {
        file_id: FileId(Digest160([0xaa; 20])),
        nonce: 0x0102030405060708,
    };
    assert_eq!(
        hex(&audit.to_wire()),
        "0110aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa0807060504030201"
    );
}
