//! Workspace-level integration tests exercising the full stack through
//! the `past` facade: overlay + storage + crypto + baselines together.

use past::core::{BuildMode, ContentRef, PastConfig, PastNetwork, PastOut};
use past::crypto::rng::Rng;
use past::netsim::{Sphere, Topology, TransitStub, UniformRandom};
use past::pastry::{random_ids, Config, Id, NullApp, PastrySim};

fn small_pastry_cfg() -> Config {
    Config {
        leaf_len: 8,
        neighborhood_len: 8,
        ..Config::default()
    }
}

fn run_workload_on<T: Topology>(name: &str, net: &mut PastNetwork<T>) {
    let content = ContentRef::from_bytes(b"cross-topology payload");
    net.insert(2, "xtopo.bin", content, 3)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let events = net.run();
    let fid = events
        .iter()
        .find_map(|(_, _, e)| match e {
            PastOut::InsertOk { file_id, .. } => Some(*file_id),
            _ => None,
        })
        .unwrap_or_else(|| panic!("{name}: insert failed: {events:?}"));
    net.lookup(17, fid);
    assert!(
        net.run()
            .iter()
            .any(|(_, _, e)| matches!(e, PastOut::LookupOk { .. })),
        "{name}: lookup failed"
    );
    net.reclaim(2, fid);
    net.run();
    assert!(
        net.replica_holders(&fid).is_empty(),
        "{name}: reclaim failed"
    );
}

#[test]
fn full_stack_insert_lookup_reclaim_on_every_topology() {
    // The same PAST workload must behave identically in protocol terms on
    // any proximity model.
    let n = 30;
    let seed = 1;
    let mut rng = Rng::seed_from_u64(seed);
    let ids = random_ids(n, &mut rng);
    run_workload_on("sphere", &mut mk_boxed(Sphere::new(n, seed), &ids, seed));
    run_workload_on(
        "transit-stub",
        &mut mk_boxed(TransitStub::new(n, seed, 4, 3), &ids, seed),
    );
    run_workload_on(
        "uniform-random",
        &mut mk_boxed(UniformRandom::new(n, seed, 1_000, 80_000), &ids, seed),
    );
}

fn mk_boxed<T: Topology>(topo: T, ids: &[Id], seed: u64) -> PastNetwork<T> {
    let n = ids.len();
    PastNetwork::build(
        topo,
        small_pastry_cfg(),
        PastConfig::default(),
        seed,
        ids,
        &vec![64 << 20; n],
        &vec![1 << 30; n],
        BuildMode::ProtocolJoins,
    )
}

#[test]
fn static_and_joined_networks_agree_on_roots() {
    let n = 300;
    let seed = 3;
    let mut rng = Rng::seed_from_u64(seed);
    let ids = random_ids(n, &mut rng);
    let mut joined: PastrySim<NullApp, Sphere> =
        PastrySim::new(Sphere::new(n, seed), small_pastry_cfg(), seed);
    joined.build_by_joins(&ids, |_| NullApp, 8);
    let mut stat = past::pastry::static_build(
        Sphere::new(n, seed),
        small_pastry_cfg(),
        seed,
        &ids,
        |_| NullApp,
        2,
    );
    for _ in 0..120 {
        let key = Id(rng.random());
        let from = rng.random_range(0..n);
        joined.route(from, key, ());
        stat.route(from, key, ());
        let a = joined.drain_deliveries()[0].delivered_at;
        let b = stat.drain_deliveries()[0].delivered_at;
        assert_eq!(
            joined.handle(a).id,
            stat.handle(b).id,
            "both builds must deliver at the same root"
        );
    }
}

#[test]
fn end_to_end_latency_is_plausible() {
    // Client-perceived fetch latency must be bounded by a few network
    // round trips on the sphere (max one-way 120 ms).
    let n = 100;
    let seed = 4;
    let mut rng = Rng::seed_from_u64(seed);
    let ids = random_ids(n, &mut rng);
    let mut net = mk_boxed(Sphere::new(n, seed), &ids, seed);
    let content = ContentRef::from_bytes(b"latency probe");
    net.insert(0, "probe", content, 3).expect("quota");
    let events = net.run();
    let fid = events
        .iter()
        .find_map(|(_, _, e)| match e {
            PastOut::InsertOk { file_id, .. } => Some(*file_id),
            _ => None,
        })
        .expect("insert ok");
    for client in [10, 20, 30] {
        net.lookup(client, fid);
        for (at, _, e) in net.run() {
            if let PastOut::LookupOk { started_us, .. } = e {
                let ms = (at.as_micros() - started_us) as f64 / 1000.0;
                assert!(
                    ms < 1_500.0,
                    "client {client}: fetch took {ms} ms, absurd for this topology"
                );
                // Zero is legitimate: the client may serve itself from a
                // copy cached when the insert routed through it.
            }
        }
    }
}

#[test]
fn crypto_chain_is_exercised_end_to_end() {
    // With crypto checks ON, a receipts round-trip really verifies the
    // broker→card→certificate chain; spot-check by corrupting a broker
    // key mid-flight.
    let n = 25;
    let seed = 5;
    let mut rng = Rng::seed_from_u64(seed);
    let ids = random_ids(n, &mut rng);
    let mut net = mk_boxed(Sphere::new(n, seed), &ids, seed);
    assert!(net.past_cfg().crypto_checks);
    let content = ContentRef::from_bytes(b"signed all the way");
    net.insert(1, "signed", content, 3).expect("quota");
    let ok = net
        .run()
        .iter()
        .any(|(_, _, e)| matches!(e, PastOut::InsertOk { .. }));
    assert!(ok);

    // Flip the broker key on one storage node: it must now reject
    // everything it is asked to store.
    let victim = 7;
    net.sim.engine.node_mut(victim).app.broker_key =
        past::crypto::KeyPair::from_seed(b"other broker").public;
    let content2 = ContentRef::from_bytes(b"will be partially refused");
    net.insert(victim, "refused", content2, 1).expect("quota");
    let events = net.run();
    // The victim is also the client: with a wrong trust anchor it cannot
    // verify the store receipts, so the insert never confirms (no
    // InsertOk event) — the verification demonstrably ran.
    assert!(
        !events
            .iter()
            .any(|(_, a, e)| *a == victim && matches!(e, PastOut::InsertOk { .. })),
        "a client with the wrong broker key must not accept receipts"
    );
    assert!(
        net.sim.engine.node(victim).app.pending_insert_count() > 0
            || events
                .iter()
                .any(|(_, _, e)| matches!(e, PastOut::InsertFailed { .. })),
        "the insert stays unconfirmed or fails"
    );
}

#[test]
fn workload_generators_drive_realistic_fill() {
    use past::workload::{Capacities, FileSizes};
    let n = 40;
    let seed = 6;
    let mut rng = Rng::seed_from_u64(seed);
    let ids = random_ids(n, &mut rng);
    let caps = Capacities {
        mean_bytes: 2 << 20,
        spread: 3.0,
    }
    .sample_n(n, &mut rng);
    let mut net = PastNetwork::build(
        Sphere::new(n, seed),
        small_pastry_cfg(),
        PastConfig {
            crypto_checks: false,
            cache_enabled: false,
            default_k: 2,
            ..PastConfig::default()
        },
        seed,
        &ids,
        &caps,
        &vec![u64::MAX / 2; n],
        BuildMode::ProtocolJoins,
    );
    let sizes = FileSizes {
        max_bytes: 64 << 10,
        ..FileSizes::default()
    };
    let mut ok = 0;
    for i in 0..400 {
        let size = sizes.sample(&mut rng);
        let client = rng.random_range(0..n);
        let name = format!("fill-{i}");
        let content = ContentRef::synthetic(client, &name, size);
        if net.insert(client, &name, content, 2).is_ok() {
            for (_, _, e) in net.run() {
                if matches!(e, PastOut::InsertOk { .. }) {
                    ok += 1;
                }
            }
        }
    }
    let (_, _, util) = net.utilization();
    assert!(ok > 300, "most fills succeed: {ok}");
    assert!(util > 0.05, "utilization moved: {util}");
}

#[test]
fn baselines_and_pastry_route_the_same_keys() {
    use past::baselines::{CanSim, ChordSim};
    let n = 200;
    let seed = 7;
    let mut rng = Rng::seed_from_u64(seed);
    let ids = random_ids(n, &mut rng);
    let mut pastry = past::pastry::static_build(
        Sphere::new(n, seed),
        Config::default(),
        seed,
        &ids,
        |_| NullApp,
        2,
    );
    let mut chord = ChordSim::build(Sphere::new(n, seed), seed, &ids);
    let mut can = CanSim::build(Sphere::new(n, seed), seed, &ids, 2);
    for _ in 0..50 {
        let key = Id(rng.random());
        let from = rng.random_range(0..n);
        pastry.route(from, key, ());
        chord.lookup(from, key);
        can.lookup(from, key);
        assert_eq!(pastry.drain_deliveries().len(), 1);
        assert_eq!(chord.drain().len(), 1);
        assert_eq!(can.drain().len(), 1);
    }
}
