//! Workspace-wide property-based tests (proptest) of core invariants.

use past::core::{ContentRef, ReplicaKind, Store};
use past::crypto::modmath::{addmod, invmod_prime, mulmod, powmod, rem256, submod};
use past::crypto::schnorr::{group_p, group_q, KeyPair};
use past::crypto::sha256::{sha256, Sha256};
use past::crypto::u256::U256;
use past::pastry::{next_hop, Config, Id, LeafSet, NextHop, NodeHandle, PastryState};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn u256(lo: u64, a: u64, b: u64, hi: u64) -> U256 {
    U256([lo, a, b, hi])
}

proptest! {
    // ---------------- u256 / modular arithmetic ------------------------

    #[test]
    fn u256_add_commutes(a0: u64, a1: u64, a2: u64, a3: u64, b0: u64, b1: u64, b2: u64, b3: u64) {
        let a = u256(a0, a1, a2, a3);
        let b = u256(b0, b1, b2, b3);
        prop_assert_eq!(a.overflowing_add(&b), b.overflowing_add(&a));
    }

    #[test]
    fn u256_add_sub_roundtrip(a0: u64, a1: u64, a2: u64, a3: u64, b0: u64, b1: u64, b2: u64, b3: u64) {
        let a = u256(a0, a1, a2, a3);
        let b = u256(b0, b1, b2, b3);
        let (sum, _) = a.overflowing_add(&b);
        let (back, _) = sum.overflowing_sub(&b);
        prop_assert_eq!(back, a);
    }

    #[test]
    fn u256_mul_commutes(a0: u64, a1: u64, b0: u64, b1: u64) {
        let a = u256(a0, a1, 0, 0);
        let b = u256(b0, b1, 0, 0);
        prop_assert_eq!(a.widening_mul(&b).0, b.widening_mul(&a).0);
    }

    #[test]
    fn u256_bytes_roundtrip(a0: u64, a1: u64, a2: u64, a3: u64) {
        let a = u256(a0, a1, a2, a3);
        prop_assert_eq!(U256::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn modmath_matches_u128(a in 0u128..u128::MAX, b in 0u128..u128::MAX, m in 2u64..u64::MAX) {
        // Compare against native arithmetic in a u64 modulus.
        let m256 = U256::from_u64(m);
        let am = (a % m as u128) as u64;
        let bm = (b % m as u128) as u64;
        let a256 = U256::from_u64(am);
        let b256 = U256::from_u64(bm);
        prop_assert_eq!(addmod(&a256, &b256, &m256), U256::from_u64(((am as u128 + bm as u128) % m as u128) as u64));
        prop_assert_eq!(mulmod(&a256, &b256, &m256), U256::from_u64(((am as u128 * bm as u128) % m as u128) as u64));
        prop_assert_eq!(submod(&a256, &b256, &m256), U256::from_u64(((am as u128 + m as u128 - bm as u128) % m as u128) as u64));
    }

    #[test]
    fn fermat_inverse_in_group(x0: u64, x1: u64, x2: u64, x3: u64) {
        let p = group_p();
        let x = rem256(&u256(x0, x1, x2, x3), &p);
        if !x.is_zero() {
            let inv = invmod_prime(&x, &p).expect("nonzero");
            prop_assert_eq!(mulmod(&x, &inv, &p), U256::ONE);
        }
    }

    #[test]
    fn powmod_homomorphism(e1 in 0u64..1_000_000, e2 in 0u64..1_000_000) {
        // g^(e1+e2) == g^e1 * g^e2 (mod p).
        let p = group_p();
        let g = U256::from_u64(4);
        let lhs = powmod(&g, &U256::from_u64(e1 + e2), &p);
        let rhs = mulmod(&powmod(&g, &U256::from_u64(e1), &p), &powmod(&g, &U256::from_u64(e2), &p), &p);
        prop_assert_eq!(lhs, rhs);
    }

    // ---------------- hashing ------------------------------------------

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn sha256_is_deterministic_and_sensitive(data in proptest::collection::vec(any::<u8>(), 1..256), flip in 0usize..256) {
        let flip = flip.min(data.len() - 1);
        let mut tampered = data.clone();
        tampered[flip] ^= 1;
        prop_assert_eq!(sha256(&data), sha256(&data));
        prop_assert_ne!(sha256(&data), sha256(&tampered));
    }

    // ---------------- signatures ----------------------------------------

    #[test]
    fn schnorr_roundtrip_and_tamper(seed in proptest::collection::vec(any::<u8>(), 1..32), msg in proptest::collection::vec(any::<u8>(), 0..128)) {
        let kp = KeyPair::from_seed(&seed);
        let sig = kp.sign(&msg);
        prop_assert!(kp.public.verify(&msg, &sig));
        let mut tampered = msg.clone();
        tampered.push(0x55);
        prop_assert!(!kp.public.verify(&tampered, &sig));
        // Response scalar must stay below q.
        prop_assert!(sig.response < group_q());
    }

    // ---------------- identifiers ---------------------------------------

    #[test]
    fn id_prefix_len_is_symmetric_and_bounded(a: u128, b: u128) {
        let (x, y) = (Id(a), Id(b));
        let p = x.prefix_len(&y, 4);
        prop_assert_eq!(p, y.prefix_len(&x, 4));
        prop_assert!(p <= 32);
        if a == b { prop_assert_eq!(p, 32); }
        // Shared prefix means equal leading digits.
        for i in 0..p.min(31) {
            prop_assert_eq!(x.digit(i, 4), y.digit(i, 4));
        }
        if p < 32 {
            prop_assert_ne!(x.digit(p, 4), y.digit(p, 4));
        }
    }

    #[test]
    fn ring_distance_is_a_metric(a: u128, b: u128) {
        let (x, y) = (Id(a), Id(b));
        prop_assert_eq!(x.ring_dist(&y), y.ring_dist(&x));
        prop_assert_eq!(x.ring_dist(&x), 0);
        prop_assert!(x.ring_dist(&y) <= u128::MAX / 2 + 1);
        if a != b { prop_assert!(x.ring_dist(&y) > 0); }
    }

    // ---------------- leaf set -------------------------------------------

    #[test]
    fn leafset_keeps_the_closest(own: u128, others in proptest::collection::hash_set(any::<u128>(), 1..40)) {
        let mut ls = LeafSet::new(Id(own), 8);
        let handles: Vec<NodeHandle> = others
            .iter()
            .filter(|&&id| id != own)
            .enumerate()
            .map(|(i, &id)| NodeHandle::new(Id(id), i + 1))
            .collect();
        for &h in &handles {
            ls.insert(h);
        }
        prop_assert!(ls.len() <= 8);
        // Each retained member on a side must be at least as close as any
        // rejected node on that side.
        for side in [past::pastry::Side::Smaller, past::pastry::Side::Larger] {
            let members = ls.side_members(side);
            if members.len() == 4 {
                let worst = members.last().expect("non-empty");
                let worst_d = match side {
                    past::pastry::Side::Larger => Id(own).cw_dist(&worst.id),
                    past::pastry::Side::Smaller => worst.id.cw_dist(&Id(own)),
                };
                for h in &handles {
                    if ls.side_of(&h.id) == side && !ls.contains_addr(h.addr) {
                        let d = match side {
                            past::pastry::Side::Larger => Id(own).cw_dist(&h.id),
                            past::pastry::Side::Smaller => h.id.cw_dist(&Id(own)),
                        };
                        prop_assert!(d >= worst_d, "rejected closer node");
                    }
                }
            }
        }
    }

    // ---------------- routing step ---------------------------------------

    #[test]
    fn routing_step_strictly_progresses(own: u128, key: u128, others in proptest::collection::hash_set(any::<u128>(), 1..60)) {
        let cfg = Config { leaf_len: 8, neighborhood_len: 8, ..Config::default() };
        let mut st = PastryState::new(cfg, NodeHandle::new(Id(own), 0));
        for (i, &id) in others.iter().enumerate() {
            if id != own {
                st.add_node(NodeHandle::new(Id(id), i + 1), (i as u64 % 100) + 1);
            }
        }
        let key = Id(key);
        let mut rng = StdRng::seed_from_u64(1);
        if let NextHop::Forward(next) = next_hop(&st, &key, &mut rng) {
            let own_p = Id(own).prefix_len(&key, 4);
            let next_p = next.id.prefix_len(&key, 4);
            let own_d = Id(own).ring_dist(&key);
            let next_d = next.id.ring_dist(&key);
            // Every forward either lengthens the shared prefix (routing
            // table branch) or strictly approaches the key numerically
            // (leaf-set and rare-case branches; ties break to the smaller
            // id). The leaf branch may *shorten* the prefix across a digit
            // boundary — canonical Pastry allows this, and the route-hop
            // TTL (DESIGN.md 3.8) backstops the resulting corner cases.
            prop_assert!(
                next_p > own_p
                    || next_d < own_d
                    || (next_d == own_d && next.id.0 < own),
                "invalid step own={own:x} next={:x} key={:x}", next.id.0, key.0
            );
        }
    }

    // ---------------- storage accounting ---------------------------------

    #[test]
    fn store_accounting_is_conserved(ops in proptest::collection::vec((1u64..2_000, any::<bool>()), 1..60)) {
        let mut store = Store::new(20_000, 1.0, 0.5);
        let mut broker = past::core::Broker::new(b"prop");
        let mut card = broker.issue_card(b"u", u64::MAX / 2, 0);
        let mut live: Vec<(past::core::FileId, u64)> = Vec::new();
        let mut expected_used = 0u64;
        for (i, &(size, remove)) in ops.iter().enumerate() {
            if remove && !live.is_empty() {
                let (fid, sz) = live.remove(i % live.len());
                prop_assert_eq!(store.remove(&fid), sz);
                expected_used -= sz;
            } else {
                let name = format!("f{i}");
                let content = ContentRef::synthetic(0, &name, size);
                let cert = card.issue_file_certificate(&name, &content, 1, i as u64, 0).expect("quota");
                if store.insert(&cert, ReplicaKind::Primary).is_ok() {
                    expected_used += size;
                    live.push((cert.file_id, size));
                }
            }
            prop_assert_eq!(store.used(), expected_used);
            prop_assert_eq!(store.free(), 20_000 - expected_used);
            prop_assert!(store.cache.used() <= store.free());
        }
    }

    // ---------------- GreedyDual-Size cache -------------------------------

    #[test]
    fn cache_never_exceeds_budget(sizes in proptest::collection::vec(1u64..500, 1..50), budget in 100u64..2_000) {
        let mut broker = past::core::Broker::new(b"prop2");
        let mut card = broker.issue_card(b"u", u64::MAX / 2, 0);
        let mut cache = past::core::cache::Cache::new();
        for (i, &size) in sizes.iter().enumerate() {
            let name = format!("c{i}");
            let content = ContentRef::synthetic(0, &name, size);
            let cert = card.issue_file_certificate(&name, &content, 1, i as u64, 0).expect("quota");
            cache.offer(&cert, budget);
            prop_assert!(cache.used() <= budget, "cache {} over budget {}", cache.used(), budget);
        }
    }

    // ---------------- certificates ----------------------------------------

    #[test]
    fn certificate_tamper_always_detected(size in 1u64..1_000_000, k in 1u8..10, salt: u64, which in 0usize..4) {
        let mut broker = past::core::Broker::new(b"prop3");
        let mut card = broker.issue_card(b"u", u64::MAX / 2, 0);
        let content = ContentRef::synthetic(0, "t", size);
        let mut cert = card.issue_file_certificate("t", &content, k, salt, 7).expect("quota");
        prop_assert!(cert.verify(&broker.public()));
        match which {
            0 => cert.size ^= 1,
            1 => cert.replication ^= 1,
            2 => cert.salt ^= 1,
            _ => cert.content_hash.0[0] ^= 1,
        }
        prop_assert!(!cert.verify(&broker.public()));
    }
}
