//! Workspace-wide randomized property tests of core invariants.
//!
//! Formerly written against the external `proptest` crate; now driven by
//! the in-tree deterministic RNG (`past::crypto::rng`) so the whole test
//! suite builds and runs with zero registry access. Each test draws a
//! fixed number of cases from a fixed seed, so failures reproduce
//! exactly; to explore more of the space, bump `CASES` locally.

use past::core::{ContentRef, ReplicaKind, Store};
use past::crypto::modmath::{addmod, invmod_prime, mulmod, powmod, rem256, submod};
use past::crypto::rng::Rng;
use past::crypto::schnorr::{group_p, group_q, KeyPair};
use past::crypto::sha256::{sha256, Sha256};
use past::crypto::u256::U256;
use past::pastry::{next_hop, Config, Id, LeafSet, NextHop, NodeHandle, PastryState};

/// Cases per property (roughly proptest's default budget).
const CASES: usize = 256;

fn rand_u256(rng: &mut Rng) -> U256 {
    U256([rng.random(), rng.random(), rng.random(), rng.random()])
}

fn rand_bytes(rng: &mut Rng, max_len: usize) -> Vec<u8> {
    let len = rng.random_range(0..=max_len);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

// ---------------- u256 / modular arithmetic ------------------------

#[test]
fn u256_add_commutes() {
    let mut rng = Rng::seed_from_u64(0x0256_0001);
    for _ in 0..CASES {
        let (a, b) = (rand_u256(&mut rng), rand_u256(&mut rng));
        assert_eq!(a.overflowing_add(&b), b.overflowing_add(&a));
    }
}

#[test]
fn u256_add_sub_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x0256_0002);
    for _ in 0..CASES {
        let (a, b) = (rand_u256(&mut rng), rand_u256(&mut rng));
        let (sum, _) = a.overflowing_add(&b);
        let (back, _) = sum.overflowing_sub(&b);
        assert_eq!(back, a);
    }
}

#[test]
fn u256_mul_commutes() {
    let mut rng = Rng::seed_from_u64(0x0256_0003);
    for _ in 0..CASES {
        let a = U256([rng.random(), rng.random(), 0, 0]);
        let b = U256([rng.random(), rng.random(), 0, 0]);
        assert_eq!(a.widening_mul(&b).0, b.widening_mul(&a).0);
    }
}

#[test]
fn u256_bytes_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x0256_0004);
    for _ in 0..CASES {
        let a = rand_u256(&mut rng);
        assert_eq!(U256::from_be_bytes(&a.to_be_bytes()), a);
    }
}

#[test]
fn modmath_matches_u128() {
    let mut rng = Rng::seed_from_u64(0x0256_0005);
    for _ in 0..CASES {
        // Compare against native arithmetic in a u64 modulus.
        let a: u128 = rng.random();
        let b: u128 = rng.random();
        let m: u64 = rng.random_range(2..u64::MAX);
        let m256 = U256::from_u64(m);
        let am = (a % m as u128) as u64;
        let bm = (b % m as u128) as u64;
        let a256 = U256::from_u64(am);
        let b256 = U256::from_u64(bm);
        assert_eq!(
            addmod(&a256, &b256, &m256),
            U256::from_u64(((am as u128 + bm as u128) % m as u128) as u64)
        );
        assert_eq!(
            mulmod(&a256, &b256, &m256),
            U256::from_u64(((am as u128 * bm as u128) % m as u128) as u64)
        );
        assert_eq!(
            submod(&a256, &b256, &m256),
            U256::from_u64(((am as u128 + m as u128 - bm as u128) % m as u128) as u64)
        );
    }
}

#[test]
fn fermat_inverse_in_group() {
    let mut rng = Rng::seed_from_u64(0x0256_0006);
    let p = group_p();
    for _ in 0..CASES {
        let x = rem256(&rand_u256(&mut rng), &p);
        if !x.is_zero() {
            let inv = invmod_prime(&x, &p).expect("nonzero");
            assert_eq!(mulmod(&x, &inv, &p), U256::ONE);
        }
    }
}

#[test]
fn powmod_homomorphism() {
    let mut rng = Rng::seed_from_u64(0x0256_0007);
    let p = group_p();
    let g = U256::from_u64(4);
    for _ in 0..64 {
        // g^(e1+e2) == g^e1 * g^e2 (mod p).
        let e1: u64 = rng.random_range(0..1_000_000);
        let e2: u64 = rng.random_range(0..1_000_000);
        let lhs = powmod(&g, &U256::from_u64(e1 + e2), &p);
        let rhs = mulmod(
            &powmod(&g, &U256::from_u64(e1), &p),
            &powmod(&g, &U256::from_u64(e2), &p),
            &p,
        );
        assert_eq!(lhs, rhs);
    }
}

// ---------------- hashing ------------------------------------------

#[test]
fn sha256_incremental_equals_oneshot() {
    let mut rng = Rng::seed_from_u64(0x0256_0008);
    for _ in 0..CASES {
        let data = rand_bytes(&mut rng, 512);
        let split = rng.random_range(0..=data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finalize(), sha256(&data));
    }
}

#[test]
fn sha256_is_deterministic_and_sensitive() {
    let mut rng = Rng::seed_from_u64(0x0256_0009);
    for _ in 0..CASES {
        let mut data = rand_bytes(&mut rng, 255);
        data.push(rng.random()); // at least one byte
        let flip = rng.random_range(0..data.len());
        let mut tampered = data.clone();
        tampered[flip] ^= 1;
        assert_eq!(sha256(&data), sha256(&data));
        assert_ne!(sha256(&data), sha256(&tampered));
    }
}

// ---------------- signatures ----------------------------------------

#[test]
fn schnorr_roundtrip_and_tamper() {
    let mut rng = Rng::seed_from_u64(0x0256_000a);
    for _ in 0..32 {
        let mut seed = rand_bytes(&mut rng, 31);
        seed.push(rng.random()); // non-empty
        let msg = rand_bytes(&mut rng, 128);
        let kp = KeyPair::from_seed(&seed);
        let sig = kp.sign(&msg);
        assert!(kp.public.verify(&msg, &sig));
        let mut tampered = msg.clone();
        tampered.push(0x55);
        assert!(!kp.public.verify(&tampered, &sig));
        // Response scalar must stay below q.
        assert!(sig.response < group_q());
    }
}

// ---------------- identifiers ---------------------------------------

#[test]
fn id_prefix_len_is_symmetric_and_bounded() {
    let mut rng = Rng::seed_from_u64(0x0256_000b);
    for case in 0..CASES {
        let a: u128 = rng.random();
        // Half the cases flip one bit of `a` to exercise long shared
        // prefixes, which independent draws would essentially never hit.
        let b: u128 = if case % 2 == 0 {
            rng.random()
        } else {
            a ^ (1u128 << rng.random_range(0..128u32))
        };
        let (x, y) = (Id(a), Id(b));
        let p = x.prefix_len(&y, 4);
        assert_eq!(p, y.prefix_len(&x, 4));
        assert!(p <= 32);
        if a == b {
            assert_eq!(p, 32);
        }
        // Shared prefix means equal leading digits.
        for i in 0..p.min(31) {
            assert_eq!(x.digit(i, 4), y.digit(i, 4));
        }
        if p < 32 {
            assert_ne!(x.digit(p, 4), y.digit(p, 4));
        }
    }
}

#[test]
fn ring_distance_is_a_metric() {
    let mut rng = Rng::seed_from_u64(0x0256_000c);
    for _ in 0..CASES {
        let a: u128 = rng.random();
        let b: u128 = rng.random();
        let (x, y) = (Id(a), Id(b));
        assert_eq!(x.ring_dist(&y), y.ring_dist(&x));
        assert_eq!(x.ring_dist(&x), 0);
        assert!(x.ring_dist(&y) <= u128::MAX / 2 + 1);
        if a != b {
            assert!(x.ring_dist(&y) > 0);
        }
    }
}

// ---------------- leaf set -------------------------------------------

#[test]
fn leafset_keeps_the_closest() {
    let mut rng = Rng::seed_from_u64(0x0256_000d);
    for _ in 0..CASES {
        let own: u128 = rng.random();
        let count = rng.random_range(1..40usize);
        let mut others: Vec<u128> = (0..count).map(|_| rng.random()).collect();
        others.sort_unstable();
        others.dedup();
        let mut ls = LeafSet::new(Id(own), 8);
        let handles: Vec<NodeHandle> = others
            .iter()
            .filter(|&&id| id != own)
            .enumerate()
            .map(|(i, &id)| NodeHandle::new(Id(id), i + 1))
            .collect();
        for &h in &handles {
            ls.insert(h);
        }
        assert!(ls.len() <= 8);
        // Each retained member on a side must be at least as close as any
        // rejected node on that side.
        for side in [past::pastry::Side::Smaller, past::pastry::Side::Larger] {
            let members = ls.side_members(side);
            if members.len() == 4 {
                let worst = members.last().expect("non-empty");
                let worst_d = match side {
                    past::pastry::Side::Larger => Id(own).cw_dist(&worst.id),
                    past::pastry::Side::Smaller => worst.id.cw_dist(&Id(own)),
                };
                for h in &handles {
                    if ls.side_of(&h.id) == side && !ls.contains_addr(h.addr) {
                        let d = match side {
                            past::pastry::Side::Larger => Id(own).cw_dist(&h.id),
                            past::pastry::Side::Smaller => h.id.cw_dist(&Id(own)),
                        };
                        assert!(d >= worst_d, "rejected closer node");
                    }
                }
            }
        }
    }
}

// ---------------- routing step ---------------------------------------

#[test]
fn routing_step_strictly_progresses() {
    let mut rng = Rng::seed_from_u64(0x0256_000e);
    for _ in 0..CASES {
        let own: u128 = rng.random();
        let key_raw: u128 = rng.random();
        let count = rng.random_range(1..60usize);
        let mut others: Vec<u128> = (0..count).map(|_| rng.random()).collect();
        others.sort_unstable();
        others.dedup();
        let cfg = Config {
            leaf_len: 8,
            neighborhood_len: 8,
            ..Config::default()
        };
        let mut st = PastryState::new(cfg, NodeHandle::new(Id(own), 0));
        for (i, &id) in others.iter().enumerate() {
            if id != own {
                st.add_node(NodeHandle::new(Id(id), i + 1), (i as u64 % 100) + 1);
            }
        }
        let key = Id(key_raw);
        let mut hop_rng = Rng::seed_from_u64(1);
        if let NextHop::Forward(next) = next_hop(&st, &key, &mut hop_rng) {
            let own_p = Id(own).prefix_len(&key, 4);
            let next_p = next.id.prefix_len(&key, 4);
            let own_d = Id(own).ring_dist(&key);
            let next_d = next.id.ring_dist(&key);
            // Every forward either lengthens the shared prefix (routing
            // table branch) or strictly approaches the key numerically
            // (leaf-set and rare-case branches; ties break to the smaller
            // id). The leaf branch may *shorten* the prefix across a digit
            // boundary — canonical Pastry allows this, and the route-hop
            // TTL (DESIGN.md 3.8) backstops the resulting corner cases.
            assert!(
                next_p > own_p || next_d < own_d || (next_d == own_d && next.id.0 < own),
                "invalid step own={own:x} next={:x} key={:x}",
                next.id.0,
                key.0
            );
        }
    }
}

// ---------------- storage accounting ---------------------------------

#[test]
fn store_accounting_is_conserved() {
    let mut rng = Rng::seed_from_u64(0x0256_000f);
    for _ in 0..64 {
        let op_count = rng.random_range(1..60usize);
        let ops: Vec<(u64, bool)> = (0..op_count)
            .map(|_| (rng.random_range(1..2_000u64), rng.random()))
            .collect();
        let mut store = Store::new(20_000, 1.0, 0.5);
        let mut broker = past::core::Broker::new(b"prop");
        let mut card = broker.issue_card(b"u", u64::MAX / 2, 0);
        let mut live: Vec<(past::core::FileId, u64)> = Vec::new();
        let mut expected_used = 0u64;
        for (i, &(size, remove)) in ops.iter().enumerate() {
            if remove && !live.is_empty() {
                let (fid, sz) = live.remove(i % live.len());
                assert_eq!(store.remove(&fid), sz);
                expected_used -= sz;
            } else {
                let name = format!("f{i}");
                let content = ContentRef::synthetic(0, &name, size);
                let cert = card
                    .issue_file_certificate(&name, &content, 1, i as u64, 0)
                    .expect("quota");
                if store.insert(&cert, ReplicaKind::Primary).is_ok() {
                    expected_used += size;
                    live.push((cert.file_id, size));
                }
            }
            assert_eq!(store.used(), expected_used);
            assert_eq!(store.free(), 20_000 - expected_used);
            assert!(store.cache.used() <= store.free());
        }
    }
}

// ---------------- GreedyDual-Size cache -------------------------------

#[test]
fn cache_never_exceeds_budget() {
    let mut rng = Rng::seed_from_u64(0x0256_0010);
    for _ in 0..64 {
        let budget = rng.random_range(100..2_000u64);
        let count = rng.random_range(1..50usize);
        let mut broker = past::core::Broker::new(b"prop2");
        let mut card = broker.issue_card(b"u", u64::MAX / 2, 0);
        let mut cache = past::core::cache::Cache::new();
        for i in 0..count {
            let size = rng.random_range(1..500u64);
            let name = format!("c{i}");
            let content = ContentRef::synthetic(0, &name, size);
            let cert = card
                .issue_file_certificate(&name, &content, 1, i as u64, 0)
                .expect("quota");
            cache.offer(&cert, budget);
            assert!(
                cache.used() <= budget,
                "cache {} over budget {}",
                cache.used(),
                budget
            );
        }
    }
}

// ---------------- certificates ----------------------------------------

#[test]
fn certificate_tamper_always_detected() {
    let mut rng = Rng::seed_from_u64(0x0256_0011);
    for _ in 0..32 {
        let size = rng.random_range(1..1_000_000u64);
        let k = rng.random_range(1..10u8);
        let salt: u64 = rng.random();
        let which = rng.random_range(0..4usize);
        let mut broker = past::core::Broker::new(b"prop3");
        let mut card = broker.issue_card(b"u", u64::MAX / 2, 0);
        let content = ContentRef::synthetic(0, "t", size);
        let mut cert = card
            .issue_file_certificate("t", &content, k, salt, 7)
            .expect("quota");
        assert!(cert.verify(&broker.public()));
        match which {
            0 => cert.size ^= 1,
            1 => cert.replication ^= 1,
            2 => cert.salt ^= 1,
            _ => cert.content_hash.0[0] ^= 1,
        }
        assert!(!cert.verify(&broker.public()));
    }
}
